"""Counter reports: the output of one perf session.

Reports carry their own consistency contract: :meth:`CounterReport.
validate` checks the invariants every consumer of the counter layer
assumes (per-level hit + miss equals the loads that reached the level,
branch subtypes sum to all branches, mispredicts bounded by branches,
rates in [0, 1], RSS bounded by VSZ).  :class:`~repro.runner.runner.
SuiteRunner` enforces it on every simulated and cached pair, so an
inconsistent report surfaces as a structured failure instead of silently
poisoning the PCA/clustering chain downstream.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Mapping, Tuple

from ..errors import CounterError, CounterValidationError
from ..workloads.profile import WorkloadProfile
from . import counters as C

#: Relative slack for count identities.  Counters are scaled floats (counts
#: up to ~1e13), so identities that are exact in exact arithmetic may drift
#: a few ulps through the per-op scaling.
_REL_TOL = 1e-6
_ABS_TOL = 1e-6


class CounterReport(Mapping):
    """Immutable mapping of counter name -> value for one pair's run.

    Also exposes the derived metrics the paper works with (IPC, mix
    percentages, per-level miss rates, mispredict rate) as properties so
    downstream analysis never re-derives them inconsistently.
    """

    def __init__(self, profile: WorkloadProfile, values: Dict[str, float]):
        unknown = set(values) - set(C.ALL_COUNTERS)
        if unknown:
            raise CounterError("unknown counters in report: %s" % sorted(unknown))
        self.profile = profile
        self._values = dict(values)

    # -- Mapping protocol ---------------------------------------------------
    def __getitem__(self, name: str) -> float:
        try:
            return self._values[name]
        except KeyError:
            raise CounterError(
                "counter %r was not collected for %s"
                % (name, self.profile.pair_name)
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CounterReport(%s, %d counters)" % (
            self.profile.pair_name, len(self._values)
        )

    # -- derived metrics ------------------------------------------------------
    @property
    def instructions(self) -> float:
        return self[C.INST_RETIRED]

    @property
    def cycles(self) -> float:
        return self[C.REF_CYCLES]

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles

    @property
    def wall_time_seconds(self) -> float:
        return self[C.WALL_TIME]

    @property
    def load_pct(self) -> float:
        return 100.0 * self[C.MEM_LOADS] / self[C.UOPS_RETIRED]

    @property
    def store_pct(self) -> float:
        return 100.0 * self[C.MEM_STORES] / self[C.UOPS_RETIRED]

    @property
    def memory_pct(self) -> float:
        return self.load_pct + self.store_pct

    @property
    def branch_pct(self) -> float:
        return 100.0 * self[C.BR_ALL] / self[C.UOPS_RETIRED]

    def branch_subtype_pct(self) -> Tuple[float, float, float, float, float]:
        """Branch subtypes as percentages of all branches."""
        total = self[C.BR_ALL]
        if total == 0:
            return (0.0,) * 5
        return tuple(100.0 * self[name] / total for name in C.BRANCH_COUNTERS)

    def miss_rate(self, level: int) -> float:
        """Load miss rate of cache level 1, 2, or 3 (fraction)."""
        try:
            hit_name, miss_name = C.CACHE_COUNTERS[level - 1]
        except IndexError:
            raise CounterError("no cache level %d" % level) from None
        hits, misses = self[hit_name], self[miss_name]
        total = hits + misses
        return misses / total if total else 0.0

    @property
    def miss_rates(self) -> Tuple[float, float, float]:
        return (self.miss_rate(1), self.miss_rate(2), self.miss_rate(3))

    @property
    def mispredict_rate(self) -> float:
        branches = self[C.BR_ALL]
        return self[C.BR_MISP] / branches if branches else 0.0

    @property
    def rss_bytes(self) -> float:
        return self[C.PS_RSS]

    @property
    def vsz_bytes(self) -> float:
        return self[C.PS_VSZ]

    # -- consistency contract -------------------------------------------------

    def validate(self) -> Tuple[str, ...]:
        """Check the counter-consistency invariants; return violations.

        An empty tuple means the report is internally consistent.  Checks
        only apply when every counter they mention is present, so partial
        reports (old cache layouts, hand-built test fixtures) validate
        the subset they carry.
        """
        values = self._values
        issues: List[str] = []

        for name in sorted(values):
            value = values[name]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                issues.append("%s is not numeric (%r)" % (name, value))
            elif not math.isfinite(value):
                issues.append("%s is not finite (%r)" % (name, value))
            elif value < 0:
                issues.append("%s is negative (%r)" % (name, value))
        if issues:
            # The arithmetic identities below assume finite, non-negative
            # operands; report the primitive violations alone.
            return tuple(issues)

        def have(*names: str) -> bool:
            return all(name in values for name in names)

        def close(a: float, b: float) -> bool:
            return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)

        def at_most(a: float, b: float) -> bool:
            return a <= b or close(a, b)

        # Per-level hit + miss must equal the loads that reached the level
        # (which also caps misses at accesses, given non-negativity).
        chain = (
            ("L1", C.L1_HIT, C.L1_MISS, C.MEM_LOADS, "all loads"),
            ("L2", C.L2_HIT, C.L2_MISS, C.L1_MISS, "L1 misses"),
            ("L3", C.L3_HIT, C.L3_MISS, C.L2_MISS, "L2 misses"),
        )
        for level, hit, miss, total, label in chain:
            if have(hit, miss, total) and not close(
                values[hit] + values[miss], values[total]
            ):
                issues.append(
                    "%s hit+miss (%g) != %s (%g)"
                    % (level, values[hit] + values[miss], label, values[total])
                )

        if have(C.BR_ALL, *C.BRANCH_COUNTERS):
            subtype_sum = sum(values[name] for name in C.BRANCH_COUNTERS)
            if not close(subtype_sum, values[C.BR_ALL]):
                issues.append(
                    "branch subtypes sum to %g but all-branches is %g"
                    % (subtype_sum, values[C.BR_ALL])
                )

        if have(C.BR_ALL, C.BR_MISP) and not at_most(
            values[C.BR_MISP], values[C.BR_ALL]
        ):
            issues.append(
                "mispredicted branches (%g) exceed all branches (%g)"
                % (values[C.BR_MISP], values[C.BR_ALL])
            )

        if have(C.UOPS_RETIRED, C.MEM_LOADS, C.MEM_STORES, C.BR_ALL):
            classified = (
                values[C.MEM_LOADS] + values[C.MEM_STORES] + values[C.BR_ALL]
            )
            if not at_most(classified, values[C.UOPS_RETIRED]):
                issues.append(
                    "loads+stores+branches (%g) exceed retired uops (%g)"
                    % (classified, values[C.UOPS_RETIRED])
                )

        if have(C.PS_RSS, C.PS_VSZ) and not at_most(
            values[C.PS_RSS], values[C.PS_VSZ]
        ):
            issues.append(
                "RSS (%g) exceeds VSZ (%g)"
                % (values[C.PS_RSS], values[C.PS_VSZ])
            )

        if (
            have(C.INST_RETIRED, C.REF_CYCLES)
            and values[C.INST_RETIRED] > 0
            and values[C.REF_CYCLES] <= 0
        ):
            issues.append(
                "zero cycles against %g retired instructions (IPC undefined)"
                % values[C.INST_RETIRED]
            )

        # Derived rates must land in [0, 1]; given the identities above
        # these are belt-and-braces, but they are the properties the
        # analysis chain actually consumes.
        for label, rate in self._rate_views():
            if not -_REL_TOL <= rate <= 1.0 + _REL_TOL:
                issues.append("%s (%g) outside [0, 1]" % (label, rate))

        return tuple(issues)

    def _rate_views(self) -> List[Tuple[str, float]]:
        """The [0, 1]-bounded derived rates computable from this report."""
        values = self._values
        rates: List[Tuple[str, float]] = []
        for level, (hit_name, miss_name) in enumerate(C.CACHE_COUNTERS, start=1):
            if hit_name in values and miss_name in values:
                rates.append(("L%d miss rate" % level, self.miss_rate(level)))
        if C.BR_ALL in values and C.BR_MISP in values:
            rates.append(("mispredict rate", self.mispredict_rate))
        return rates

    def require_valid(self) -> "CounterReport":
        """Return self if consistent, else raise
        :class:`~repro.errors.CounterValidationError`."""
        issues = self.validate()
        if issues:
            raise CounterValidationError(self.profile.pair_name, issues)
        return self
