"""Counter reports: the output of one perf session."""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

from ..errors import CounterError
from ..workloads.profile import WorkloadProfile
from . import counters as C


class CounterReport(Mapping):
    """Immutable mapping of counter name -> value for one pair's run.

    Also exposes the derived metrics the paper works with (IPC, mix
    percentages, per-level miss rates, mispredict rate) as properties so
    downstream analysis never re-derives them inconsistently.
    """

    def __init__(self, profile: WorkloadProfile, values: Dict[str, float]):
        unknown = set(values) - set(C.ALL_COUNTERS)
        if unknown:
            raise CounterError("unknown counters in report: %s" % sorted(unknown))
        self.profile = profile
        self._values = dict(values)

    # -- Mapping protocol ---------------------------------------------------
    def __getitem__(self, name: str) -> float:
        try:
            return self._values[name]
        except KeyError:
            raise CounterError(
                "counter %r was not collected for %s"
                % (name, self.profile.pair_name)
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CounterReport(%s, %d counters)" % (
            self.profile.pair_name, len(self._values)
        )

    # -- derived metrics ------------------------------------------------------
    @property
    def instructions(self) -> float:
        return self[C.INST_RETIRED]

    @property
    def cycles(self) -> float:
        return self[C.REF_CYCLES]

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles

    @property
    def wall_time_seconds(self) -> float:
        return self[C.WALL_TIME]

    @property
    def load_pct(self) -> float:
        return 100.0 * self[C.MEM_LOADS] / self[C.UOPS_RETIRED]

    @property
    def store_pct(self) -> float:
        return 100.0 * self[C.MEM_STORES] / self[C.UOPS_RETIRED]

    @property
    def memory_pct(self) -> float:
        return self.load_pct + self.store_pct

    @property
    def branch_pct(self) -> float:
        return 100.0 * self[C.BR_ALL] / self[C.UOPS_RETIRED]

    def branch_subtype_pct(self) -> Tuple[float, float, float, float, float]:
        """Branch subtypes as percentages of all branches."""
        total = self[C.BR_ALL]
        if total == 0:
            return (0.0,) * 5
        return tuple(100.0 * self[name] / total for name in C.BRANCH_COUNTERS)

    def miss_rate(self, level: int) -> float:
        """Load miss rate of cache level 1, 2, or 3 (fraction)."""
        try:
            hit_name, miss_name = C.CACHE_COUNTERS[level - 1]
        except IndexError:
            raise CounterError("no cache level %d" % level) from None
        hits, misses = self[hit_name], self[miss_name]
        total = hits + misses
        return misses / total if total else 0.0

    @property
    def miss_rates(self) -> Tuple[float, float, float]:
        return (self.miss_rate(1), self.miss_rate(2), self.miss_rate(3))

    @property
    def mispredict_rate(self) -> float:
        branches = self[C.BR_ALL]
        return self[C.BR_MISP] / branches if branches else 0.0

    @property
    def rss_bytes(self) -> float:
        return self[C.PS_RSS]

    @property
    def vsz_bytes(self) -> float:
        return self[C.PS_VSZ]
