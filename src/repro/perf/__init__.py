"""A perf-like counter layer over the simulated core.

Exposes the exact counter flags the paper lists (Section III and Table
VIII) as named counters: a :class:`PerfSession` runs one application-input
pair on the configured system model and returns a :class:`CounterReport`
whose values are scaled from the simulated sample to the pair's nominal
instruction count.
"""

from .counters import (
    ALL_COUNTERS,
    BRANCH_COUNTERS,
    CACHE_COUNTERS,
    Counter,
    describe,
)
from .report import CounterReport
from .session import PerfSession

__all__ = [
    "ALL_COUNTERS",
    "BRANCH_COUNTERS",
    "CACHE_COUNTERS",
    "Counter",
    "CounterReport",
    "PerfSession",
    "describe",
]
