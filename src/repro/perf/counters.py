"""Hardware-counter names used throughout the reproduction.

These mirror the Linux ``perf`` event flags the paper instruments on the
Haswell machine (Section III, Section IV, Table VIII), plus the two
``ps``-derived pseudo-counters (RSS, VSZ) and wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import CounterError

# Retirement / cycles.
INST_RETIRED = "inst_retired.any"
UOPS_RETIRED = "uops_retired.all"
REF_CYCLES = "cpu_clk_unhalted.ref_tsc"

# Memory micro-ops.
MEM_LOADS = "mem_uops_retired.all_loads"
MEM_STORES = "mem_uops_retired.all_stores"

# Branch execution, by subtype.
BR_ALL = "br_inst_exec.all_branches"
BR_CONDITIONAL = "br_inst_exec.all_conditional"
BR_DIRECT_JMP = "br_inst_exec.all_direct_jmp"
BR_DIRECT_NEAR_CALL = "br_inst_exec.all_direct_near_call"
BR_INDIRECT_JUMP = "br_inst_exec.all_indirect_jump_non_call_ret"
BR_INDIRECT_NEAR_RETURN = "br_inst_exec.all_indirect_near_return"
BR_MISP = "br_misp_exec.all_branches"

# Cache load hits/misses per level.
L1_HIT = "mem_load_uops_retired.l1_hit"
L1_MISS = "mem_load_uops_retired.l1_miss"
L2_HIT = "mem_load_uops_retired.l2_hit"
L2_MISS = "mem_load_uops_retired.l2_miss"
L3_HIT = "mem_load_uops_retired.l3_hit"
L3_MISS = "mem_load_uops_retired.l3_miss"

# ps-derived pseudo-counters and wall time.
PS_RSS = "ps.rss"
PS_VSZ = "ps.vsz"
WALL_TIME = "wall_time.seconds"


@dataclass(frozen=True)
class Counter:
    """Descriptor of one named counter."""

    name: str
    unit: str
    description: str


_DESCRIPTORS: Tuple[Counter, ...] = (
    Counter(INST_RETIRED, "instructions", "Retired instructions"),
    Counter(UOPS_RETIRED, "uops", "Retired micro-operations"),
    Counter(REF_CYCLES, "cycles", "Reference (TSC-rate) unhalted cycles"),
    Counter(MEM_LOADS, "uops", "Retired load micro-operations"),
    Counter(MEM_STORES, "uops", "Retired store micro-operations"),
    Counter(BR_ALL, "branches", "Executed branch instructions (all)"),
    Counter(BR_CONDITIONAL, "branches", "Executed conditional branches"),
    Counter(BR_DIRECT_JMP, "branches", "Executed direct jumps"),
    Counter(BR_DIRECT_NEAR_CALL, "branches", "Executed direct near calls"),
    Counter(BR_INDIRECT_JUMP, "branches",
            "Executed indirect jumps (non call/return)"),
    Counter(BR_INDIRECT_NEAR_RETURN, "branches",
            "Executed indirect near returns"),
    Counter(BR_MISP, "branches", "Mispredicted executed branches (all)"),
    Counter(L1_HIT, "loads", "Retired loads that hit the L1D"),
    Counter(L1_MISS, "loads", "Retired loads that missed the L1D"),
    Counter(L2_HIT, "loads", "Retired loads that hit the L2"),
    Counter(L2_MISS, "loads", "Retired loads that missed the L2"),
    Counter(L3_HIT, "loads", "Retired loads that hit the L3"),
    Counter(L3_MISS, "loads", "Retired loads that missed the L3"),
    Counter(PS_RSS, "bytes", "Maximum resident set size (ps -o rss)"),
    Counter(PS_VSZ, "bytes", "Maximum virtual set size (ps -o vsz)"),
    Counter(WALL_TIME, "seconds", "Wall-clock execution time"),
)

#: Registry of every counter this layer produces.
ALL_COUNTERS: Dict[str, Counter] = {c.name: c for c in _DESCRIPTORS}

#: The branch-subtype counters in BranchMix order.
BRANCH_COUNTERS: Tuple[str, ...] = (
    BR_CONDITIONAL,
    BR_DIRECT_JMP,
    BR_DIRECT_NEAR_CALL,
    BR_INDIRECT_JUMP,
    BR_INDIRECT_NEAR_RETURN,
)

#: Per-level (hit, miss) cache counters, innermost first.
CACHE_COUNTERS: Tuple[Tuple[str, str], ...] = (
    (L1_HIT, L1_MISS),
    (L2_HIT, L2_MISS),
    (L3_HIT, L3_MISS),
)


def describe(name: str) -> Counter:
    """Look up a counter descriptor by name."""
    try:
        return ALL_COUNTERS[name]
    except KeyError:
        raise CounterError("unknown counter %r" % name) from None
