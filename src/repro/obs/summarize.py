"""Offline span analysis: turn a JSONL trace into a per-stage breakdown.

The JSONL sink writes one finished span per line, children before
parents.  This module rebuilds the tree and aggregates wall/CPU time per
span *name* (the "stage"), attributing to each stage its **self time**
(wall time minus the wall time of its direct children) as well as its
cumulative time, so the table answers "where did the run actually go"
without double counting nested stages.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ReproError


class TraceFileError(ReproError):
    """Raised when a trace file cannot be read or parsed."""


@dataclass
class StageLine:
    """Aggregate of every span sharing one name."""

    name: str
    count: int = 0
    wall_s: float = 0.0
    self_s: float = 0.0
    cpu_s: float = 0.0
    errors: int = 0

    @property
    def mean_ms(self) -> float:
        return 1e3 * self.wall_s / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Everything :func:`summarize` extracts from one trace file."""

    spans: List[Dict[str, object]]
    stages: List[StageLine]
    total_self_s: float
    roots: List[Dict[str, object]] = field(default_factory=list)

    @property
    def n_spans(self) -> int:
        return len(self.spans)


def load_spans(path: str) -> List[Dict[str, object]]:
    """Read one span dict per JSONL line (blank lines skipped).

    Salvage-friendly, the same contract as
    :meth:`~repro.obs.ledger.RunLedger.records`: a corrupt or truncated
    line — typically the trailing half-line of a sweep that was killed
    mid-write — is skipped with a warning instead of sinking the whole
    file; every well-formed span around it is still returned.  Only an
    unreadable file raises.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as error:
        raise TraceFileError("cannot read trace %s: %s" % (path, error)) from error
    spans: List[Dict[str, object]] = []
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except ValueError:
            warnings.warn(
                "trace %s:%d is not valid JSON; skipping the line"
                % (path, lineno),
                stacklevel=2,
            )
            continue
        if not isinstance(record, dict) or "name" not in record:
            warnings.warn(
                "trace %s:%d is not a span record; skipping the line"
                % (path, lineno),
                stacklevel=2,
            )
            continue
        spans.append(record)
    return spans


def summarize_spans(spans: List[Dict[str, object]]) -> TraceSummary:
    """Aggregate spans per stage name, computing self times."""
    by_id: Dict[int, Dict[str, object]] = {}
    children_wall: Dict[int, float] = {}
    roots: List[Dict[str, object]] = []
    for span in spans:
        span_id = span.get("id")
        if isinstance(span_id, int):
            by_id[span_id] = span
    for span in spans:
        parent = span.get("parent")
        if parent is None or parent not in by_id:
            roots.append(span)
        else:
            children_wall[parent] = (
                children_wall.get(parent, 0.0) + float(span.get("wall_s") or 0.0)
            )

    stages: Dict[str, StageLine] = {}
    total_self = 0.0
    for span in spans:
        name = str(span.get("name"))
        line = stages.get(name)
        if line is None:
            line = stages[name] = StageLine(name)
        wall = float(span.get("wall_s") or 0.0)
        span_id = span.get("id")
        child_wall = children_wall.get(span_id, 0.0) if isinstance(span_id, int) else 0.0
        self_s = max(wall - child_wall, 0.0)
        line.count += 1
        line.wall_s += wall
        line.self_s += self_s
        line.cpu_s += float(span.get("cpu_s") or 0.0)
        if span.get("status") == "error":
            line.errors += 1
        total_self += self_s

    ordered = sorted(
        stages.values(), key=lambda line: (-line.self_s, line.name)
    )
    return TraceSummary(
        spans=spans, stages=ordered, total_self_s=total_self, roots=roots
    )


def summarize(path: str) -> TraceSummary:
    return summarize_spans(load_spans(path))


def render_table(summary: TraceSummary) -> str:
    """The per-stage breakdown table ``repro trace summarize`` prints."""
    header = "%-24s %7s %12s %12s %10s %7s %7s" % (
        "stage", "count", "total_ms", "self_ms", "mean_ms", "self%", "errors"
    )
    lines = [header, "-" * len(header)]
    total = summary.total_self_s
    for stage in summary.stages:
        share = 100.0 * stage.self_s / total if total > 0 else 0.0
        lines.append(
            "%-24s %7d %12.2f %12.2f %10.3f %6.1f%% %7d"
            % (
                stage.name, stage.count, 1e3 * stage.wall_s,
                1e3 * stage.self_s, stage.mean_ms, share, stage.errors,
            )
        )
    lines.append(
        "%d spans, %d root(s), %.2f ms total self time"
        % (summary.n_spans, len(summary.roots), 1e3 * summary.total_self_s)
    )
    return "\n".join(lines)


def render_tree(summary: TraceSummary, max_depth: Optional[int] = None) -> str:
    """An indented span tree (names + attrs), for debugging traces."""
    children: Dict[Optional[int], List[Dict[str, object]]] = {}
    for span in summary.spans:
        children.setdefault(span.get("parent"), []).append(span)
    known = {span.get("id") for span in summary.spans}

    lines: List[str] = []

    def walk(span: Dict[str, object], depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        attrs = span.get("attrs") or {}
        attr_text = " ".join(
            "%s=%s" % (key, attrs[key]) for key in sorted(attrs)
        )
        status = span.get("status")
        suffix = " [%s]" % status if status != "ok" else ""
        lines.append("%s%s (%.2f ms)%s%s" % (
            "  " * depth, span.get("name"), 1e3 * float(span.get("wall_s") or 0.0),
            (" " + attr_text) if attr_text else "", suffix,
        ))
        for child in children.get(span.get("id"), []):
            walk(child, depth + 1)

    for span in summary.spans:
        parent = span.get("parent")
        if parent is None or parent not in known:
            walk(span, 0)
    return "\n".join(lines)
