"""Span-scoped deterministic profiler: *which functions* ate a stage.

The span tracer answers "which stage took the time"; this module drops
one level lower and attributes a selected stage's wall time to the
Python (and C) functions that ran inside it.  A :class:`SpanProfiler`
holds a set of stage names (span names, e.g. ``engine.exec``) and
installs a ``sys.setprofile`` callback only while one of those spans is
open, so the rest of the pipeline — and every run that never asks for
profiling — pays nothing beyond one attribute check per span.

Collected data is a plain dict of JSON types (:meth:`SpanProfiler.data`),
so worker processes ship their profiles home through the same picklable
result channel their spans use, and the parent folds them together with
:func:`merge_profile_data`.  Two export formats:

* **Collapsed stacks** (:func:`render_collapsed`): one
  ``frame;frame;frame <microseconds>`` line per observed call stack —
  the format ``flamegraph.pl`` and speedscope ingest directly.
* **Top-N table** (:func:`render_top`): per-function call count,
  cumulative, and self time, sorted by self time.

Deterministic in shape: under a fixed seed the same stages call the same
functions in the same nesting, so two runs differ only in the timing
values — the same contract the span tree keeps.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..hashing import content_hash
from .trace import ObsError

#: Profile-payload schema version.
PROFILE_SCHEMA = 1

#: Separator between frames of a collapsed stack line.
STACK_SEP = ";"


def _frame_key(frame) -> str:
    """``module:qualname`` for a Python frame (stable across runs)."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    # co_qualname exists from 3.11; co_name keeps 3.9/3.10 working with
    # the plain function name.
    name = getattr(code, "co_qualname", code.co_name)
    return "%s:%s" % (module, name)


def _c_key(func) -> str:
    """A stable key for a built-in/C callable."""
    module = getattr(func, "__module__", None)
    name = getattr(func, "__qualname__", getattr(func, "__name__", "?"))
    if module:
        return "<%s.%s>" % (module, name)
    return "<%s>" % name


class SpanProfiler:
    """Aggregating ``sys.setprofile`` collector gated on span names.

    Args:
        stages: Span names that activate collection (``{"engine.exec"}``).
            An empty set builds a valid but permanently inactive profiler.

    The tracer calls :meth:`span_started` / :meth:`span_finished` on
    every span; only matching names install/remove the profile callback.
    Nested matching spans are handled with an activation counter, so the
    callback is installed exactly while at least one selected stage is
    open.
    """

    def __init__(self, stages: Iterable[str]):
        self.stages: FrozenSet[str] = frozenset(stages)
        self._active = 0
        #: Live call stack: [key, enter_time, child_time] triples.
        self._stack: List[List[object]] = []
        #: Self time per collapsed stack tuple, seconds.
        self._stack_self: Dict[Tuple[str, ...], float] = {}
        #: Per-function aggregates.
        self._calls: Dict[str, int] = {}
        self._self: Dict[str, float] = {}
        self._cum: Dict[str, float] = {}
        #: Active occurrences per key, to keep recursive cumulative time
        #: from double counting.
        self._depth: Dict[str, int] = {}
        self._prior_callback = None

    # -- tracer hooks ------------------------------------------------------

    def span_started(self, name: str) -> None:
        if name not in self.stages:
            return
        self._active += 1
        if self._active == 1:
            self._stack = []
            self._prior_callback = sys.getprofile()
            sys.setprofile(self._callback)

    def span_finished(self, name: str) -> None:
        if name not in self.stages:
            return
        if self._active <= 0:
            raise ObsError(
                "profiler stage %r finished without a matching start" % name
            )
        self._active -= 1
        if self._active == 0:
            sys.setprofile(self._prior_callback)
            self._prior_callback = None
            # Frames still live when the stage closed (the callback saw
            # their call but will never see their return): attribute the
            # time they have accrued so far, innermost first.
            now = time.perf_counter()
            while self._stack:
                self._pop_frame(now)

    # -- the sys.setprofile callback ---------------------------------------

    def _callback(self, frame, event: str, arg) -> None:
        if event == "call":
            self._push(_frame_key(frame))
        elif event == "return":
            # A return for a frame entered before the profiler was
            # installed arrives with an empty stack; ignore it.
            if self._stack:
                self._pop_frame(time.perf_counter())
        elif event == "c_call":
            self._push(_c_key(arg))
        elif event in ("c_return", "c_exception"):
            if self._stack:
                self._pop_frame(time.perf_counter())

    def _push(self, key: str) -> None:
        self._stack.append([key, time.perf_counter(), 0.0])
        self._depth[key] = self._depth.get(key, 0) + 1

    def _pop_frame(self, now: float) -> None:
        key, entered, child_time = self._stack.pop()
        elapsed = now - entered
        self_time = max(elapsed - child_time, 0.0)
        self._calls[key] = self._calls.get(key, 0) + 1
        self._self[key] = self._self.get(key, 0.0) + self_time
        remaining = self._depth.get(key, 1) - 1
        self._depth[key] = remaining
        if remaining == 0:
            # Only the outermost frame of a recursive chain adds to
            # cumulative time, mirroring cProfile's primitive calls.
            self._cum[key] = self._cum.get(key, 0.0) + elapsed
        stack_key = tuple(entry[0] for entry in self._stack) + (key,)
        self._stack_self[stack_key] = (
            self._stack_self.get(stack_key, 0.0) + self_time
        )
        if self._stack:
            self._stack[-1][2] += elapsed

    # -- results -----------------------------------------------------------

    @property
    def active(self) -> bool:
        """Is the callback currently installed?"""
        return self._active > 0

    def data(self) -> Dict[str, object]:
        """Picklable aggregate: the worker hand-off and export input."""
        return {
            "schema": PROFILE_SCHEMA,
            "stages": sorted(self.stages),
            "stacks": {
                STACK_SEP.join(key): seconds
                for key, seconds in self._stack_self.items()
            },
            "funcs": {
                key: {
                    "calls": self._calls.get(key, 0),
                    "self_s": self._self.get(key, 0.0),
                    "cum_s": self._cum.get(key, 0.0),
                }
                for key in self._calls
            },
        }

    def merge(self, data: Dict[str, object]) -> None:
        """Fold a :meth:`data` payload (e.g. from a worker) into this
        profiler's aggregates."""
        for stack, seconds in (data.get("stacks") or {}).items():
            key = tuple(stack.split(STACK_SEP))
            self._stack_self[key] = (
                self._stack_self.get(key, 0.0) + float(seconds)
            )
        for key, entry in (data.get("funcs") or {}).items():
            self._calls[key] = self._calls.get(key, 0) + int(
                entry.get("calls", 0)
            )
            self._self[key] = self._self.get(key, 0.0) + float(
                entry.get("self_s", 0.0)
            )
            self._cum[key] = self._cum.get(key, 0.0) + float(
                entry.get("cum_s", 0.0)
            )

    def reset(self) -> None:
        """Drop the aggregates (the worker does this after each task)."""
        self._stack_self.clear()
        self._calls.clear()
        self._self.clear()
        self._cum.clear()
        self._depth.clear()


# ---------------------------------------------------------------------------
# Export formats
# ---------------------------------------------------------------------------

def render_collapsed(data: Dict[str, object]) -> str:
    """flamegraph.pl-compatible collapsed stacks, one per line.

    Values are integer microseconds of *self* time for that exact stack;
    stacks whose time rounds to zero are dropped.  Lines are sorted so
    two profiles of the same run diff cleanly.
    """
    lines = []
    for stack, seconds in sorted((data.get("stacks") or {}).items()):
        micros = int(round(float(seconds) * 1e6))
        if micros > 0:
            lines.append("%s %d" % (stack, micros))
    return "\n".join(lines)


def render_top(data: Dict[str, object], limit: int = 20) -> str:
    """Per-function table sorted by self time, top ``limit`` rows."""
    funcs = data.get("funcs") or {}
    total_self = sum(float(e.get("self_s", 0.0)) for e in funcs.values())
    header = "%-52s %9s %11s %11s %7s" % (
        "function", "calls", "cum_ms", "self_ms", "self%"
    )
    lines = [header, "-" * len(header)]
    ordered = sorted(
        funcs.items(),
        key=lambda item: (-float(item[1].get("self_s", 0.0)), item[0]),
    )
    for key, entry in ordered[:limit]:
        self_s = float(entry.get("self_s", 0.0))
        share = 100.0 * self_s / total_self if total_self > 0 else 0.0
        lines.append(
            "%-52s %9d %11.3f %11.3f %6.1f%%"
            % (
                key[-52:], int(entry.get("calls", 0)),
                1e3 * float(entry.get("cum_s", 0.0)), 1e3 * self_s, share,
            )
        )
    lines.append(
        "%d function(s) over stages %s, %.2f ms total self time"
        % (len(funcs), ",".join(data.get("stages") or []) or "-",
           1e3 * total_self)
    )
    return "\n".join(lines)


def profile_digest(data: Dict[str, object]) -> str:
    """Short content hash over the *shape* of a profile.

    Hashes the sorted stack keys and stages — not the timings — so two
    runs through the same code paths share a digest and a code change
    that reroutes a stage shows up as a new one.  This is the value the
    run ledger records alongside ``critical_path_s``.
    """
    shape = {
        "stages": sorted(data.get("stages") or []),
        "stacks": sorted((data.get("stacks") or {}).keys()),
    }
    return content_hash(shape)[:12]


def merge_profile_data(
    into: Optional[Dict[str, object]], other: Dict[str, object]
) -> Dict[str, object]:
    """Combine two :meth:`SpanProfiler.data` payloads (pure function)."""
    if into is None:
        profiler = SpanProfiler(other.get("stages") or [])
        profiler.merge(other)
        return profiler.data()
    profiler = SpanProfiler(
        set(into.get("stages") or []) | set(other.get("stages") or [])
    )
    profiler.merge(into)
    profiler.merge(other)
    return profiler.data()
