"""``repro.obs`` — structured observability for the measurement pipeline.

The pipeline that characterizes SPEC is itself an instrumented system:
this package gives it spans (:class:`Tracer`), metrics
(:class:`MetricsRegistry`), and the hot-path hooks (:func:`profile`,
:func:`count`, :func:`observe`) that the runner, sessions, engines, and
stats stages call.

Observability is **off by default** and costs one early-out per hook
when off (the hooks return a shared no-op), so the engine benchmarks
are unaffected.  Turn it on per process::

    from repro import obs

    obs.enable(trace_path="run.jsonl")      # spans -> ring buffer + JSONL
    ... run the pipeline ...
    print(obs.registry().to_prometheus())   # metrics dump
    obs.disable()                           # close the sink, drop state

The CLI exposes the same switch as ``repro run --trace out.jsonl
--metrics``.  Worker processes get their own (sinkless) tracer and
registry; the :class:`~repro.runner.runner.SuiteRunner` ships their
spans and metric snapshots back through the existing picklable result
channel and stitches them into the parent's trace (``Tracer.graft`` /
``MetricsRegistry.merge``).

Zero dependencies beyond the standard library, by design.
"""

from __future__ import annotations

from typing import Dict, Optional

from .drift import (
    DriftDetector,
    DriftFinding,
    DriftReport,
    DriftThresholds,
    check_ledger,
    paper_anchor_vector,
    sampling_rel_sigma,
)
from .ledger import (
    LEDGER_ENV,
    LEDGER_SCHEMA,
    LedgerError,
    RunLedger,
    build_run_record,
    characteristic_digest,
    default_ledger_path,
)
from .metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_PREFIX,
    ERROR_BUCKETS,
    MetricsError,
    MetricsRegistry,
)
from .summarize import (
    StageLine,
    TraceFileError,
    TraceSummary,
    load_spans,
    render_table,
    render_tree,
    summarize,
    summarize_spans,
)
from .trace import (
    DEFAULT_CAPACITY,
    NULL_SPAN,
    ObsError,
    SpanHandle,
    Tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "DEFAULT_PREFIX",
    "DriftDetector",
    "DriftFinding",
    "DriftReport",
    "DriftThresholds",
    "ERROR_BUCKETS",
    "LEDGER_ENV",
    "LEDGER_SCHEMA",
    "LedgerError",
    "MetricsError",
    "MetricsRegistry",
    "NULL_SPAN",
    "ObsError",
    "RunLedger",
    "SpanHandle",
    "StageLine",
    "TraceFileError",
    "TraceSummary",
    "Tracer",
    "absorb_worker_payload",
    "build_run_record",
    "characteristic_digest",
    "check_ledger",
    "count",
    "default_ledger_path",
    "disable",
    "enable",
    "enabled",
    "in_span",
    "load_spans",
    "observe",
    "paper_anchor_vector",
    "profile",
    "record",
    "registry",
    "render_table",
    "render_tree",
    "sampling_rel_sigma",
    "set_gauge",
    "summarize",
    "summarize_spans",
    "tracer",
    "worker_payload",
]

# ---------------------------------------------------------------------------
# Process-local state.  One tracer + one registry per process; the hooks
# below early-out on ``None`` so the disabled path stays branch-cheap.
# ---------------------------------------------------------------------------

_TRACER: Optional[Tracer] = None
_REGISTRY: Optional[MetricsRegistry] = None


def enable(
    trace_path: Optional[str] = None,
    capacity: int = DEFAULT_CAPACITY,
    metrics: bool = True,
) -> Tracer:
    """Turn observability on for this process (idempotent-ish: calling
    again replaces the tracer, closing any previous sink)."""
    global _TRACER, _REGISTRY
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = Tracer(capacity=capacity, sink_path=trace_path)
    if metrics and _REGISTRY is None:
        _REGISTRY = MetricsRegistry()
    elif not metrics:
        _REGISTRY = None
    return _TRACER


def disable() -> None:
    """Turn observability off and release the tracer/registry."""
    global _TRACER, _REGISTRY
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = None
    _REGISTRY = None


def enabled() -> bool:
    return _TRACER is not None


def tracer() -> Optional[Tracer]:
    """The active tracer, or None when disabled."""
    return _TRACER


def registry() -> Optional[MetricsRegistry]:
    """The active metrics registry, or None when disabled."""
    return _REGISTRY


# ---------------------------------------------------------------------------
# Hot-path hooks.  Every call site is written so the disabled cost is one
# global read + one comparison; the enabled cost is dominated by two
# clock reads per span, bounded by the engine-overhead benchmark gate.
# ---------------------------------------------------------------------------

def profile(name: str, **attrs: object):
    """A span context manager for ``name`` (no-op when disabled)::

        with obs.profile("engine.exec", engine="vector") as span:
            ...
            span.set("ops", n)
    """
    if _TRACER is None:
        return NULL_SPAN
    return _TRACER.span(name, **attrs)


def record(name: str, wall_s: float = 0.0, **attrs: object) -> None:
    """Record an externally timed or instantaneous span (no-op when
    disabled)."""
    if _TRACER is not None:
        _TRACER.record(name, wall_s=wall_s, **attrs)


def in_span(name: str) -> bool:
    """Is the innermost active span named ``name``?  False when disabled."""
    return _TRACER is not None and _TRACER.in_span(name)


def count(name: str, amount: float = 1.0, help_text: str = "",
          **labels: str) -> None:
    """Increment a counter (no-op when disabled)."""
    if _REGISTRY is not None:
        _REGISTRY.counter(name, help_text).labels(**labels).inc(amount)


def set_gauge(name: str, value: float, help_text: str = "",
              **labels: str) -> None:
    """Set a gauge (no-op when disabled)."""
    if _REGISTRY is not None:
        _REGISTRY.gauge(name, help_text).labels(**labels).set(value)


def observe(name: str, value: float, help_text: str = "",
            buckets=None, **labels: str) -> None:
    """Observe a histogram value (no-op when disabled).

    ``buckets`` fixes the family's bucket layout on first use — pass
    :data:`~repro.obs.metrics.ERROR_BUCKETS` for score-shaped families
    instead of the wall-time-shaped default.
    """
    if _REGISTRY is not None:
        _REGISTRY.histogram(
            name, help_text, buckets=buckets
        ).labels(**labels).observe(value)


def worker_payload() -> Optional[Dict[str, object]]:
    """Drain this process's spans + metrics into one picklable payload.

    Called by pool workers after each task; returns ``None`` when
    observability is off so the result channel carries no dead weight.
    """
    if _TRACER is None:
        return None
    payload: Dict[str, object] = {"spans": _TRACER.drain()}
    if _REGISTRY is not None:
        payload["metrics"] = _REGISTRY.dump()
        _REGISTRY.reset()
    return payload


def absorb_worker_payload(
    payload: Optional[Dict[str, object]],
    extra_root_attrs: Optional[Dict[str, object]] = None,
) -> None:
    """Graft a worker's spans and merge its metrics into this process."""
    if payload is None:
        return
    if _TRACER is not None and payload.get("spans"):
        _TRACER.graft(payload["spans"], extra_root_attrs=extra_root_attrs)
    if _REGISTRY is not None and payload.get("metrics"):
        _REGISTRY.merge(payload["metrics"])
