"""``repro.obs`` — structured observability for the measurement pipeline.

The pipeline that characterizes SPEC is itself an instrumented system:
this package gives it spans (:class:`Tracer`), metrics
(:class:`MetricsRegistry`), and the hot-path hooks (:func:`profile`,
:func:`count`, :func:`observe`) that the runner, sessions, engines, and
stats stages call.

Observability is **off by default** and costs one early-out per hook
when off (the hooks return a shared no-op), so the engine benchmarks
are unaffected.  Turn it on per process::

    from repro import obs

    obs.enable(trace_path="run.jsonl")      # spans -> ring buffer + JSONL
    ... run the pipeline ...
    print(obs.registry().to_prometheus())   # metrics dump
    obs.disable()                           # close the sink, drop state

The CLI exposes the same switch as ``repro run --trace out.jsonl
--metrics``.  Worker processes get their own (sinkless) tracer and
registry; the :class:`~repro.runner.runner.SuiteRunner` ships their
spans and metric snapshots back through the existing picklable result
channel and stitches them into the parent's trace (``Tracer.graft`` /
``MetricsRegistry.merge``).

Zero dependencies beyond the standard library, by design.
"""

from __future__ import annotations

from typing import Dict, Optional

from .drift import (
    DriftDetector,
    DriftFinding,
    DriftReport,
    DriftThresholds,
    check_ledger,
    paper_anchor_vector,
    sampling_rel_sigma,
)
from .ledger import (
    LEDGER_ENV,
    LEDGER_SCHEMA,
    LedgerError,
    RunLedger,
    build_run_record,
    characteristic_digest,
    default_ledger_path,
)
from .critical import (
    CriticalPathReport,
    PathSegment,
    StageShare,
    UtilizationReport,
    WorkerLine,
    critical_path,
    critical_path_seconds,
    utilization,
)
from .metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_PREFIX,
    ERROR_BUCKETS,
    MetricsError,
    MetricsRegistry,
)
from .profiler import (
    SpanProfiler,
    merge_profile_data,
    profile_digest,
    render_collapsed,
    render_top,
)
from .summarize import (
    StageLine,
    TraceFileError,
    TraceSummary,
    load_spans,
    render_table,
    render_tree,
    summarize,
    summarize_spans,
)
from .timeline import chrome_trace, export_chrome_trace
from .trace import (
    DEFAULT_CAPACITY,
    NULL_SPAN,
    ObsError,
    SpanHandle,
    Tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "DEFAULT_PREFIX",
    "CriticalPathReport",
    "DriftDetector",
    "DriftFinding",
    "DriftReport",
    "DriftThresholds",
    "ERROR_BUCKETS",
    "LEDGER_ENV",
    "LEDGER_SCHEMA",
    "LedgerError",
    "MetricsError",
    "MetricsRegistry",
    "NULL_SPAN",
    "ObsError",
    "PathSegment",
    "RunLedger",
    "SpanHandle",
    "SpanProfiler",
    "StageLine",
    "StageShare",
    "TraceFileError",
    "TraceSummary",
    "Tracer",
    "UtilizationReport",
    "WorkerLine",
    "absorb_worker_payload",
    "build_run_record",
    "characteristic_digest",
    "check_ledger",
    "chrome_trace",
    "count",
    "critical_path",
    "critical_path_seconds",
    "default_ledger_path",
    "disable",
    "enable",
    "enabled",
    "export_chrome_trace",
    "in_span",
    "load_spans",
    "merge_profile_data",
    "observe",
    "paper_anchor_vector",
    "active_profiler",
    "profile",
    "profile_digest",
    "profile_stage_names",
    "record",
    "registry",
    "render_collapsed",
    "render_table",
    "render_top",
    "render_tree",
    "sampling_rel_sigma",
    "set_gauge",
    "summarize",
    "summarize_spans",
    "tracer",
    "utilization",
    "worker_payload",
]

# ---------------------------------------------------------------------------
# Process-local state.  One tracer + one registry per process; the hooks
# below early-out on ``None`` so the disabled path stays branch-cheap.
# ---------------------------------------------------------------------------

_TRACER: Optional[Tracer] = None
_REGISTRY: Optional[MetricsRegistry] = None
_PROFILER: Optional[SpanProfiler] = None


def enable(
    trace_path: Optional[str] = None,
    capacity: int = DEFAULT_CAPACITY,
    metrics: bool = True,
    profile_stages=None,
) -> Tracer:
    """Turn observability on for this process (idempotent-ish: calling
    again replaces the tracer, closing any previous sink).

    ``profile_stages`` names the span stages (``{"engine.exec"}``) the
    span-scoped profiler collects inside; ``None`` or an empty set — the
    default — leaves the profiler off entirely, so the only hot-path
    cost is one attribute check per span.
    """
    global _TRACER, _REGISTRY, _PROFILER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = Tracer(capacity=capacity, sink_path=trace_path)
    if metrics and _REGISTRY is None:
        _REGISTRY = MetricsRegistry()
    elif not metrics:
        _REGISTRY = None
    if profile_stages:
        _PROFILER = SpanProfiler(profile_stages)
        _TRACER.set_profiler(_PROFILER)
    else:
        _PROFILER = None
    return _TRACER


def disable() -> None:
    """Turn observability off and release the tracer/registry."""
    global _TRACER, _REGISTRY, _PROFILER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = None
    _REGISTRY = None
    _PROFILER = None


def enabled() -> bool:
    return _TRACER is not None


def tracer() -> Optional[Tracer]:
    """The active tracer, or None when disabled."""
    return _TRACER


def registry() -> Optional[MetricsRegistry]:
    """The active metrics registry, or None when disabled."""
    return _REGISTRY


def active_profiler() -> Optional[SpanProfiler]:
    """The active span-scoped profiler, or None when off."""
    return _PROFILER


def profile_stage_names() -> tuple:
    """The stage names the profiler collects inside (``()`` when off).

    This is what the runner forwards to pool workers so their profilers
    watch the same stages.
    """
    return tuple(sorted(_PROFILER.stages)) if _PROFILER is not None else ()


# ---------------------------------------------------------------------------
# Hot-path hooks.  Every call site is written so the disabled cost is one
# global read + one comparison; the enabled cost is dominated by two
# clock reads per span, bounded by the engine-overhead benchmark gate.
# ---------------------------------------------------------------------------

def profile(name: str, **attrs: object):
    """A span context manager for ``name`` (no-op when disabled)::

        with obs.profile("engine.exec", engine="vector") as span:
            ...
            span.set("ops", n)
    """
    if _TRACER is None:
        return NULL_SPAN
    return _TRACER.span(name, **attrs)


def record(name: str, wall_s: float = 0.0, **attrs: object) -> None:
    """Record an externally timed or instantaneous span (no-op when
    disabled)."""
    if _TRACER is not None:
        _TRACER.record(name, wall_s=wall_s, **attrs)


def in_span(name: str) -> bool:
    """Is the innermost active span named ``name``?  False when disabled."""
    return _TRACER is not None and _TRACER.in_span(name)


def count(name: str, amount: float = 1.0, help_text: str = "",
          **labels: str) -> None:
    """Increment a counter (no-op when disabled)."""
    if _REGISTRY is not None:
        _REGISTRY.counter(name, help_text).labels(**labels).inc(amount)


def set_gauge(name: str, value: float, help_text: str = "",
              **labels: str) -> None:
    """Set a gauge (no-op when disabled)."""
    if _REGISTRY is not None:
        _REGISTRY.gauge(name, help_text).labels(**labels).set(value)


def observe(name: str, value: float, help_text: str = "",
            buckets=None, **labels: str) -> None:
    """Observe a histogram value (no-op when disabled).

    ``buckets`` fixes the family's bucket layout on first use — pass
    :data:`~repro.obs.metrics.ERROR_BUCKETS` for score-shaped families
    instead of the wall-time-shaped default.
    """
    if _REGISTRY is not None:
        _REGISTRY.histogram(
            name, help_text, buckets=buckets
        ).labels(**labels).observe(value)


def worker_payload() -> Optional[Dict[str, object]]:
    """Drain this process's spans + metrics into one picklable payload.

    Called by pool workers after each task; returns ``None`` when
    observability is off so the result channel carries no dead weight.
    The payload carries the worker's clock epoch and pid so the parent
    can place grafted spans on a shared timeline, plus the profiler
    aggregates when span-scoped profiling is on.
    """
    if _TRACER is None:
        return None
    payload: Dict[str, object] = {
        "spans": _TRACER.drain(),
        "epoch_unix": _TRACER.epoch_unix,
        "pid": _TRACER.pid,
    }
    if _REGISTRY is not None:
        payload["metrics"] = _REGISTRY.dump()
        _REGISTRY.reset()
    if _PROFILER is not None:
        payload["profile"] = _PROFILER.data()
        _PROFILER.reset()
    return payload


def absorb_worker_payload(
    payload: Optional[Dict[str, object]],
    extra_root_attrs: Optional[Dict[str, object]] = None,
) -> None:
    """Graft a worker's spans and merge its metrics + profile into this
    process, rebasing span start offsets onto this tracer's clock."""
    global _PROFILER
    if payload is None:
        return
    if _TRACER is not None and payload.get("spans"):
        rebase = 0.0
        worker_epoch = payload.get("epoch_unix")
        if isinstance(worker_epoch, (int, float)):
            rebase = float(worker_epoch) - _TRACER.epoch_unix
        _TRACER.graft(
            payload["spans"], extra_root_attrs=extra_root_attrs,
            rebase_s=rebase,
        )
    if _REGISTRY is not None and payload.get("metrics"):
        _REGISTRY.merge(payload["metrics"])
    worker_profile = payload.get("profile")
    if worker_profile:
        if _PROFILER is None:
            # The parent had no matching stage open (pooled sweeps run
            # the stages in workers); adopt the worker's stage set so
            # the merged profile still surfaces through active_profiler.
            _PROFILER = SpanProfiler(worker_profile.get("stages") or [])
            if _TRACER is not None:
                _TRACER.set_profiler(_PROFILER)
        _PROFILER.merge(worker_profile)
