"""Counters, gauges, histograms: the "how much happened" half of obs.

A :class:`MetricsRegistry` holds metric *families* (one per name), each
with zero or more labeled children.  The model is deliberately the
Prometheus one — monotonically increasing counters, point-in-time
gauges, cumulative-bucket histograms — so :meth:`MetricsRegistry.to_prometheus`
is a straight rendering, and :meth:`to_json` is the same data for
programmatic consumers.

Pool workers accumulate into their own registry and ship
:meth:`MetricsRegistry.dump` snapshots back over the result channel;
the parent folds them in with :meth:`merge` (counters and histogram
buckets add, gauges take the incoming value).

Everything is plain Python; no clocks, no global state, no threads —
one registry per process, same as the tracer.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ReproError

#: Metric names: Prometheus-compatible snake_case.
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Prefix prepended to every family name on export.
DEFAULT_PREFIX = "repro_"

#: Default histogram buckets, in seconds — tuned for per-pair wall
#: times, which span ~1 ms (cache hit) to a few seconds (cold scalar).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Buckets for dimensionless scores — relative errors, robust z-scores,
#: drift scores.  The wall-time defaults bottom out at 1 ms, far too
#: coarse for errors that live around 1e-3; families holding scores pass
#: these instead (see ``MetricsRegistry.histogram(buckets=...)``).
ERROR_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

LabelItems = Tuple[Tuple[str, str], ...]


class MetricsError(ReproError):
    """Raised for metric misuse (bad names, kind clashes, bad merges)."""


def _label_key(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash first — escaping it last would re-escape the backslashes
    the quote and newline rules just introduced.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(key: LabelItems) -> str:
    if not key:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (k, _escape_label_value(v)) for k, v in key
    )


class Counter:
    """A monotonically increasing count (one labeled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A point-in-time value (one labeled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (one labeled child)."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1


class Family:
    """One metric name: kind, help text, and labeled children."""

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[Tuple[float, ...]] = None):
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.buckets = buckets
        self._children: Dict[LabelItems, object] = {}

    def labels(self, **labels: str):
        """The child for this label combination (created on first use)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            if self.kind == COUNTER:
                child = Counter()
            elif self.kind == GAUGE:
                child = Gauge()
            else:
                child = Histogram(self.buckets or DEFAULT_BUCKETS)
            self._children[key] = child
        return child

    # Unlabeled convenience: family.inc() == family.labels().inc() etc.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def children(self) -> Iterable[Tuple[LabelItems, object]]:
        return sorted(self._children.items())


class MetricsRegistry:
    """A process-local collection of metric families."""

    def __init__(self) -> None:
        self._families: Dict[str, Family] = {}

    # -- family constructors ----------------------------------------------

    def _family(self, name: str, kind: str, help_text: str,
                buckets: Optional[Tuple[float, ...]] = None) -> Family:
        if not _NAME_RE.match(name):
            raise MetricsError("invalid metric name %r" % name)
        family = self._families.get(name)
        if family is None:
            family = Family(name, kind, help_text, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise MetricsError(
                "metric %r is a %s, not a %s" % (name, family.kind, kind)
            )
        elif kind == HISTOGRAM and buckets is not None:
            # Buckets are a per-family layout decision: the first
            # explicit choice is locked in, and a later conflicting
            # request is a bug (its observations could not merge).
            if family.buckets is None and not family._children:
                family.buckets = buckets
            elif tuple(family.buckets or DEFAULT_BUCKETS) != buckets:
                raise MetricsError(
                    "histogram %r already uses buckets %s; cannot "
                    "re-register with %s"
                    % (name, tuple(family.buckets or DEFAULT_BUCKETS),
                       buckets)
                )
        return family

    def counter(self, name: str, help_text: str = "") -> Family:
        return self._family(name, COUNTER, help_text)

    def gauge(self, name: str, help_text: str = "") -> Family:
        return self._family(name, GAUGE, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Tuple[float, ...]] = None) -> Family:
        """A histogram family; ``buckets`` fixes its per-family layout.

        Omitting ``buckets`` accepts whatever layout the family already
        has (``DEFAULT_BUCKETS`` for a fresh family).  Passing a layout
        that conflicts with an established one raises
        :class:`MetricsError`.
        """
        return self._family(name, HISTOGRAM, help_text,
                            tuple(buckets) if buckets is not None else None)

    # -- exporters ---------------------------------------------------------

    def to_prometheus(self, prefix: str = DEFAULT_PREFIX) -> str:
        """Prometheus text exposition format (families sorted by name)."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            full = prefix + name
            if family.help_text:
                lines.append("# HELP %s %s" % (full, family.help_text))
            lines.append("# TYPE %s %s" % (full, family.kind))
            for key, child in family.children():
                if family.kind == HISTOGRAM:
                    cumulative = 0
                    for bound, count in zip(child.buckets, child.counts):
                        cumulative += count
                        bucket_key = key + (("le", "%g" % bound),)
                        lines.append("%s_bucket%s %d" % (
                            full, _render_labels(bucket_key), cumulative))
                    inf_key = key + (("le", "+Inf"),)
                    lines.append("%s_bucket%s %d" % (
                        full, _render_labels(inf_key), child.count))
                    lines.append("%s_sum%s %.9g" % (
                        full, _render_labels(key), child.total))
                    lines.append("%s_count%s %d" % (
                        full, _render_labels(key), child.count))
                else:
                    lines.append("%s%s %.9g" % (
                        full, _render_labels(key), child.value))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> str:
        """The same data as JSON (stable key order)."""
        return json.dumps(self.dump(), sort_keys=True, indent=2)

    # -- snapshots / cross-process merging ---------------------------------

    def dump(self) -> Dict[str, object]:
        """Picklable snapshot of every family (the worker hand-off)."""
        families: Dict[str, object] = {}
        for name, family in sorted(self._families.items()):
            children = []
            for key, child in family.children():
                entry: Dict[str, object] = {"labels": [list(kv) for kv in key]}
                if family.kind == HISTOGRAM:
                    entry.update({
                        "buckets": list(child.buckets),
                        "counts": list(child.counts),
                        "sum": child.total,
                        "count": child.count,
                    })
                else:
                    entry["value"] = child.value
                children.append(entry)
            families[name] = {
                "kind": family.kind,
                "help": family.help_text,
                "children": children,
            }
        return families

    def merge(self, dump: Dict[str, object]) -> None:
        """Fold a :meth:`dump` snapshot in: counters and histogram
        buckets add, gauges take the incoming value."""
        for name, data in dump.items():
            kind = data.get("kind")
            if kind not in (COUNTER, GAUGE, HISTOGRAM):
                raise MetricsError("cannot merge metric %r of kind %r"
                                   % (name, kind))
            for entry in data.get("children", []):
                labels = {k: v for k, v in entry.get("labels", [])}
                if kind == HISTOGRAM:
                    family = self.histogram(
                        name, data.get("help", ""),
                        buckets=tuple(entry.get("buckets") or DEFAULT_BUCKETS),
                    )
                    child = family.labels(**labels)
                    incoming = entry.get("counts") or []
                    if tuple(entry.get("buckets") or ()) != child.buckets or \
                            len(incoming) != len(child.counts):
                        raise MetricsError(
                            "histogram %r bucket layout mismatch on merge"
                            % name
                        )
                    for index, count in enumerate(incoming):
                        child.counts[index] += count
                    child.total += entry.get("sum", 0.0)
                    child.count += entry.get("count", 0)
                elif kind == COUNTER:
                    self.counter(name, data.get("help", "")).labels(
                        **labels).inc(entry.get("value", 0.0))
                else:
                    self.gauge(name, data.get("help", "")).labels(
                        **labels).set(entry.get("value", 0.0))

    def reset(self) -> None:
        self._families.clear()
