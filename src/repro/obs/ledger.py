"""Append-only run ledger: the longitudinal memory of the pipeline.

Every :meth:`~repro.runner.runner.SuiteRunner.run` sweep appends one
JSON line to an on-disk ledger — config/engine/version hashes, the
:class:`~repro.runner.runner.RunManifest` accounting, an optional
:meth:`~repro.obs.metrics.MetricsRegistry.dump` snapshot, and a per-pair
digest of the 20 microarchitecture-independent characteristics (the
paper's Table VIII vector).  The drift watchdog (:mod:`repro.obs.drift`)
reads this history back to compute robust baselines and flag runs whose
reproduced characteristics move away from the paper's numbers.

The ledger lives under the result-cache directory by default
(``<cache dir>/ledger.jsonl``) and can be pointed anywhere with the
``REPRO_LEDGER`` environment variable or an explicit path.

Durability contract:

* **Appends are whole-line atomic.**  Each record is one ``os.write``
  of one ``\\n``-terminated line on an ``O_APPEND`` descriptor, so two
  runner processes appending concurrently interleave whole records,
  never halves.
* **Reads are salvage-friendly.**  A truncated or corrupt line (a run
  killed mid-write, a partial disk) is skipped with a warning; every
  well-formed record around it is still returned.
* **Writes are best-effort.**  The runner never fails a sweep because
  the ledger was unwritable; the sweep's counters are already in hand.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError
from ..hashing import content_hash as _content_hash

#: Ledger record schema version, stamped on every line.
LEDGER_SCHEMA = 1

#: Environment variable overriding the ledger file location.
LEDGER_ENV = "REPRO_LEDGER"

#: Record kinds the ledger currently carries.
KIND_RUN = "run"
KIND_BENCH = "bench"


class LedgerError(ReproError):
    """Raised for ledger misuse (bad path, unresolvable run reference)."""




def default_ledger_path(cache_dir=None) -> Path:
    """``$REPRO_LEDGER`` if set, else ``<cache dir>/ledger.jsonl``."""
    from ..paths import default_cache_dir

    override = os.environ.get(LEDGER_ENV)
    if override:
        return Path(override)
    base = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return base / "ledger.jsonl"


def characteristic_digest(report) -> Dict[str, float]:
    """The 20 Table-VIII characteristics of one pair, by feature name.

    This is the per-pair payload the drift detector baselines: the same
    vector :func:`repro.core.features.feature_vector` feeds into PCA,
    keyed by :data:`~repro.core.features.FEATURE_NAMES`.
    """
    # Imported lazily: core.features pulls in the perf package, which
    # imports back into repro.obs at module load.
    from ..core.features import FEATURE_NAMES, feature_vector

    vector = feature_vector(report)
    return {name: float(value) for name, value in zip(FEATURE_NAMES, vector)}


def build_run_record(
    manifest,
    reports: Dict[str, object],
    config,
    sample_ops: int,
    warmup_fraction: float,
    engine: str,
    metrics: Optional[Dict[str, object]] = None,
    timestamp: Optional[float] = None,
    critical_path_s: Optional[float] = None,
    profile_digest: Optional[str] = None,
) -> Dict[str, object]:
    """Assemble one sweep's ledger record (not yet appended).

    The ``run_id`` is a short content hash over the whole record
    (timestamp included), so re-running the same sweep yields distinct
    ids while the payload itself stays deterministic.

    ``critical_path_s`` (the traced sweep's critical-path length) and
    ``profile_digest`` (the span-scoped profile's shape hash) are
    schema-compatible extras: keys absent on untraced runs and on every
    pre-existing ledger line, ignored by :func:`comparability_key`, so
    attribution trends ride the existing drift tooling without
    invalidating history.
    """
    from .. import __version__

    record: Dict[str, object] = {
        "schema": LEDGER_SCHEMA,
        "kind": KIND_RUN,
        "time": float(timestamp) if timestamp is not None else time.time(),
        "code_version": __version__,
        "config_hash": _content_hash(config),
        "engine": engine,
        "sample_ops": sample_ops,
        "warmup_fraction": warmup_fraction,
        "manifest": manifest.as_dict(),
        "metrics": metrics,
        "pairs": {
            name: characteristic_digest(report)
            for name, report in sorted(reports.items())
        },
    }
    if critical_path_s is not None:
        record["critical_path_s"] = float(critical_path_s)
    if profile_digest is not None:
        record["profile_digest"] = str(profile_digest)
    record["run_id"] = _content_hash(record)[:12]
    return record


def build_bench_record(
    document: Dict[str, object], timestamp: Optional[float] = None
) -> Dict[str, object]:
    """Wrap one engine-benchmark measurement as a ledger record."""
    from .. import __version__

    record: Dict[str, object] = {
        "schema": LEDGER_SCHEMA,
        "kind": KIND_BENCH,
        "time": float(timestamp) if timestamp is not None else time.time(),
        "code_version": __version__,
        "bench": document,
    }
    record["run_id"] = _content_hash(record)[:12]
    return record


def comparability_key(record: Dict[str, object]) -> tuple:
    """What must match before two run records are drift-comparable.

    Deliberately *excludes* ``code_version``: characteristic movement
    across code changes is exactly the regression the watchdog exists
    to catch.
    """
    return (
        record.get("config_hash"),
        record.get("engine"),
        record.get("sample_ops"),
        record.get("warmup_fraction"),
    )


class RunLedger:
    """Append-only JSONL store of run (and bench) records.

    Args:
        path: Explicit ledger file.  ``None`` resolves via
            ``$REPRO_LEDGER``, then ``<cache_dir>/ledger.jsonl``.
        cache_dir: Directory the default path hangs off (ignored when
            ``path`` is given or the environment override is set).
    """

    def __init__(self, path=None, cache_dir=None):
        self.path = Path(path) if path is not None else default_ledger_path(
            cache_dir
        )
        self._fd: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RunLedger(%r)" % str(self.path)

    # -- writing ----------------------------------------------------------

    def append(self, record: Dict[str, object]) -> Dict[str, object]:
        """Append one record as a single whole-line write; returns it.

        The descriptor is opened ``O_APPEND`` and the line goes down in
        one ``os.write``, so concurrent appenders interleave whole
        records.  Raises ``OSError`` on an unwritable ledger — callers
        on the sweep path swallow it (best-effort contract).
        """
        line = json.dumps(record, sort_keys=True) + "\n"
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        os.write(self._fd, line.encode("utf-8"))
        return record

    def close(self) -> None:
        """Release the append descriptor (idempotent)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- reading ----------------------------------------------------------

    def records(self, kind: Optional[str] = None) -> List[Dict[str, object]]:
        """Every well-formed record, in append order.

        Corrupt or truncated lines — typically a trailing half-line from
        a killed writer — are skipped with a warning rather than raised:
        the salvageable history is worth more than the broken tail.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return []
        records: List[Dict[str, object]] = []
        for lineno, line in enumerate(lines, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                record = json.loads(text)
            except ValueError:
                warnings.warn(
                    "ledger %s:%d is not valid JSON; skipping the line"
                    % (self.path, lineno),
                    stacklevel=2,
                )
                continue
            if not isinstance(record, dict) or "schema" not in record:
                warnings.warn(
                    "ledger %s:%d is not a ledger record; skipping the line"
                    % (self.path, lineno),
                    stacklevel=2,
                )
                continue
            if kind is not None and record.get("kind") != kind:
                continue
            records.append(record)
        return records

    def runs(self) -> List[Dict[str, object]]:
        """Every sweep record, oldest first."""
        return self.records(kind=KIND_RUN)

    def last(self, kind: Optional[str] = None) -> Optional[Dict[str, object]]:
        """The newest record (of ``kind``, if given), or ``None``."""
        records = self.records(kind=kind)
        return records[-1] if records else None

    def resolve(self, ref: str) -> Dict[str, object]:
        """Find one *run* record by id prefix or by index.

        ``ref`` may be a ``run_id`` prefix (``"3fa9"``) or an integer
        index into the run history — Python semantics, so ``-1`` is the
        latest run and ``0`` the oldest.
        """
        runs = self.runs()
        if not runs:
            raise LedgerError("ledger %s holds no runs" % self.path)
        try:
            index = int(ref)
        except ValueError:
            index = None
        if index is not None:
            try:
                return runs[index]
            except IndexError:
                raise LedgerError(
                    "run index %d out of range (%d runs in %s)"
                    % (index, len(runs), self.path)
                ) from None
        matches = [
            record for record in runs
            if str(record.get("run_id", "")).startswith(ref)
        ]
        if not matches:
            raise LedgerError(
                "no run id starting with %r in %s" % (ref, self.path)
            )
        if len(matches) > 1:
            raise LedgerError(
                "run id %r is ambiguous in %s (matches %s)"
                % (ref, self.path,
                   ", ".join(str(m.get("run_id")) for m in matches))
            )
        return matches[0]

    def comparable_history(
        self, current: Dict[str, object]
    ) -> List[Dict[str, object]]:
        """Prior runs collected under the same setup as ``current``.

        "Same setup" is :func:`comparability_key` — config, engine, and
        sample parameters, but *not* code version.  The current record
        itself (matched by ``run_id``) is excluded.
        """
        key = comparability_key(current)
        current_id = current.get("run_id")
        return [
            record for record in self.runs()
            if comparability_key(record) == key
            and record.get("run_id") != current_id
        ]


def render_history(
    runs: Sequence[Dict[str, object]], limit: Optional[int] = None
) -> str:
    """The table ``repro obs history`` prints (newest last)."""
    shown = list(runs)[-limit:] if limit else list(runs)
    header = "%-12s %-19s %-8s %6s %5s %7s %5s %9s" % (
        "run_id", "time", "engine", "pairs", "hits", "misses", "fail",
        "wall_s",
    )
    lines = [header, "-" * len(header)]
    for record in shown:
        manifest = record.get("manifest") or {}
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(float(record.get("time", 0)))
        )
        lines.append(
            "%-12s %-19s %-8s %6d %5d %7d %5d %9.2f"
            % (
                record.get("run_id", "?"),
                stamp,
                record.get("engine", "?"),
                int(manifest.get("total_pairs", 0)),
                int(manifest.get("cache_hits", 0)),
                int(manifest.get("cache_misses", 0)),
                int(manifest.get("failures", 0)),
                float(manifest.get("wall_time_seconds", 0.0)),
            )
        )
    lines.append("%d run(s)" % len(shown))
    return "\n".join(lines)


def diff_runs(
    a: Dict[str, object],
    b: Dict[str, object],
    threshold: float = 0.01,
) -> List[str]:
    """Human-readable per-characteristic deltas between two run records.

    Reports every shared pair/characteristic whose relative change from
    ``a`` to ``b`` exceeds ``threshold``, plus pairs present in only one
    record and the headline manifest movement.
    """
    lines: List[str] = []
    pairs_a: Dict[str, Dict[str, float]] = a.get("pairs") or {}
    pairs_b: Dict[str, Dict[str, float]] = b.get("pairs") or {}
    only_a = sorted(set(pairs_a) - set(pairs_b))
    only_b = sorted(set(pairs_b) - set(pairs_a))
    if only_a:
        lines.append("only in %s: %s" % (a.get("run_id"), ", ".join(only_a)))
    if only_b:
        lines.append("only in %s: %s" % (b.get("run_id"), ", ".join(only_b)))
    for pair in sorted(set(pairs_a) & set(pairs_b)):
        digest_a, digest_b = pairs_a[pair], pairs_b[pair]
        for name in sorted(set(digest_a) & set(digest_b)):
            va, vb = float(digest_a[name]), float(digest_b[name])
            scale = max(abs(va), abs(vb))
            if scale <= 0.0:
                continue
            rel = abs(vb - va) / scale
            if rel > threshold:
                lines.append(
                    "%-28s %-38s %14.6g -> %-14.6g (%+.2f%%)"
                    % (pair, name, va, vb,
                       100.0 * (vb - va) / va if va else float("inf"))
                )
    manifest_a = a.get("manifest") or {}
    manifest_b = b.get("manifest") or {}
    for field in ("total_pairs", "cache_hits", "cache_misses", "failures"):
        va, vb = manifest_a.get(field), manifest_b.get(field)
        if va != vb:
            lines.append("manifest.%s: %s -> %s" % (field, va, vb))
    return lines
