"""Drift watchdog: cross-run regression and paper-fidelity detection.

Reads run records out of the :class:`~repro.obs.ledger.RunLedger` and
answers two questions about the newest sweep:

1. **Did anything move?**  For every pair and each of the 20
   microarchitecture-independent characteristics, the comparable ledger
   history (same config hash, engine, and sample parameters) yields a
   robust baseline — median plus MAD — and the current value is scored
   with the modified z-score ``0.6745 * (x - median) / MAD``.  Scores
   beyond the threshold flag the characteristic as drifted.  MAD is zero
   for the many characteristics that are bit-identical run over run
   (the simulation is deterministic under a fixed setup), so a relative
   fallback tolerance catches any deviation there.  Wall times are too
   noisy for median+MAD; they get an EWMA baseline and a generous
   relative band, and their outliers are *warnings* by default (CI boxes
   jitter), escalatable with ``fail_on_wall``.

2. **Are we still the paper?**  Each reproduced characteristic is scored
   against the value the paper anchors through the pair's
   :class:`~repro.workloads.profile.WorkloadProfile` — relative error
   against the anchor, with a tolerance band wide enough for sampling
   noise at small trace lengths.  This is the longitudinal version of
   the fidelity checks the paper itself runs on its cluster-subset
   estimates.

Both detectors export their scores as gauges/histograms through a
:class:`~repro.obs.metrics.MetricsRegistry` when one is supplied, using
the error-shaped :data:`~repro.obs.metrics.ERROR_BUCKETS` rather than
the wall-time default buckets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .ledger import RunLedger
from .metrics import ERROR_BUCKETS, MetricsRegistry

#: Modified z-score constant: for normal data, MAD * 1.4826 estimates
#: sigma, so 0.6745 * (x - median) / MAD is comparable to a z-score.
_MAD_Z = 0.6745


def median(values: Sequence[float]) -> float:
    """Plain median (values need not be sorted)."""
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float], center: Optional[float] = None) -> float:
    """Median absolute deviation around ``center`` (default: the median)."""
    if center is None:
        center = median(values)
    return median([abs(value - center) for value in values])


def ewma(values: Sequence[float], alpha: float) -> float:
    """Exponentially weighted moving average, oldest to newest."""
    iterator = iter(values)
    state = float(next(iterator))
    for value in iterator:
        state = alpha * float(value) + (1.0 - alpha) * state
    return state


def robust_score(value: float, history: Sequence[float]) -> Tuple[float, float]:
    """(modified z-score, baseline median) of ``value`` given history.

    When the history has zero spread (MAD of 0 — the common case for a
    deterministic simulation), the score degrades to the *relative*
    deviation from the median scaled so the caller's z-threshold still
    applies: any relative deviation beyond ``rel_fallback`` in
    :class:`DriftThresholds` maps above the z cut (see
    :meth:`DriftDetector._score_characteristic`).
    """
    center = median(history)
    spread = mad(history, center)
    if spread > 0.0:
        return _MAD_Z * (value - center) / spread, center
    # Degenerate spread: signal with infinity iff there is any deviation
    # the relative fallback should see; the caller applies the band.
    return float("inf") if abs(value - center) > 0.0 else 0.0, center


@dataclass(frozen=True)
class DriftThresholds:
    """Tuning knobs of the watchdog (all optional, defaults documented).

    Attributes:
        robust_z: Modified z-score beyond which a characteristic with
            non-degenerate history spread counts as drifted.
        rel_fallback: When the history has zero MAD (deterministic
            reruns), any relative deviation from the median beyond this
            fraction counts as drifted.
        min_history: Comparable prior runs required before the median+
            MAD baseline is trusted; with fewer, only the paper-anchor
            check runs.
        ewma_alpha: Smoothing factor of the wall-time EWMA baseline
            (weight of the newest historical run).
        wall_tolerance: Fraction by which the current sweep's wall time
            may exceed the EWMA baseline before a wall warning fires.
        paper_rtol: Relative error band for the paper-anchor fidelity
            check.
        paper_atol_pct: Absolute slack, in percentage points, granted to
            the ``(%)``-suffixed mix characteristics — small-percentage
            subtypes carry sampling noise that relative error magnifies.
        noise_z: Sigmas of binomial sampling noise folded into the
            paper-anchor band (see :func:`sampling_rel_sigma`): rare
            branch subtypes at small ``sample_ops`` are honest noise,
            not infidelity, and the allowance shrinks as ``1/sqrt(k)``
            when traces grow.
        fail_on_wall: Escalate wall-time outliers from warnings to
            failures (off by default: CI wall clocks jitter).
    """

    robust_z: float = 3.5
    rel_fallback: float = 0.01
    min_history: int = 3
    ewma_alpha: float = 0.3
    wall_tolerance: float = 0.5
    paper_rtol: float = 0.10
    paper_atol_pct: float = 1.0
    noise_z: float = 5.0
    fail_on_wall: bool = False


@dataclass(frozen=True)
class DriftFinding:
    """One flagged pair/characteristic (or wall-time outlier)."""

    kind: str                 # "drift" | "fidelity" | "wall"
    pair: str
    characteristic: str
    value: float
    baseline: float
    score: float              # robust z (drift), relative error (fidelity/wall)

    def describe(self) -> str:
        if self.kind == "drift":
            return (
                "%s %s drifted: %.6g vs baseline median %.6g "
                "(robust z %.2f)"
                % (self.pair, self.characteristic, self.value,
                   self.baseline, self.score)
            )
        if self.kind == "fidelity":
            return (
                "%s %s off the paper anchor: %.6g vs %.6g "
                "(rel error %.2f%%)"
                % (self.pair, self.characteristic, self.value,
                   self.baseline, 100.0 * self.score)
            )
        return (
            "%s %s above EWMA baseline: %.3fs vs %.3fs (+%.1f%%)"
            % (self.pair, self.characteristic, self.value, self.baseline,
               100.0 * self.score)
        )


@dataclass
class DriftReport:
    """Everything one watchdog pass concluded."""

    run_id: str
    history_runs: int
    checked_pairs: int = 0
    checked_characteristics: int = 0
    findings: List[DriftFinding] = field(default_factory=list)
    warnings: List[DriftFinding] = field(default_factory=list)
    skipped_pairs: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            "run %s: %d pair(s), %d characteristic check(s), "
            "%d comparable prior run(s)"
            % (self.run_id, self.checked_pairs,
               self.checked_characteristics, self.history_runs)
        ]
        lines.extend("note: %s" % note for note in self.notes)
        if self.skipped_pairs:
            lines.append(
                "skipped (no paper anchor): %s" % ", ".join(self.skipped_pairs)
            )
        lines.extend(
            "WARNING: %s" % finding.describe() for finding in self.warnings
        )
        lines.extend(
            "DRIFT: %s" % finding.describe() for finding in self.findings
        )
        lines.append(
            "ok" if self.ok else "%d finding(s)" % len(self.findings)
        )
        return "\n".join(lines)


def paper_anchor_vector(profile) -> Dict[str, float]:
    """The 20 characteristics the profile anchors to the paper's numbers.

    Reconstructed from the :class:`WorkloadProfile` the same way the
    trace generator targets them, so a faithful simulation lands inside
    the tolerance band and a mis-calibrated one does not.
    """
    # Imported lazily: core.features reaches back into repro.obs through
    # the perf package at module-import time.
    from ..core.features import FEATURE_NAMES

    mix = profile.mix
    instructions = float(profile.instructions)
    loads = instructions * mix.load_fraction
    stores = instructions * mix.store_fraction
    branches = instructions * mix.branch_fraction
    bmix = mix.branch_mix.as_tuple()
    values = [
        instructions,
        loads,
        stores,
        100.0 * mix.load_fraction,
        100.0 * mix.store_fraction,
        100.0 * mix.memory_fraction,
        branches,
        100.0 * mix.branch_fraction,
        branches * bmix[0],
        branches * bmix[1],
        branches * bmix[2],
        branches * bmix[3],
        branches * bmix[4],
        100.0 * bmix[0],
        100.0 * bmix[1],
        100.0 * bmix[2],
        100.0 * bmix[3],
        100.0 * bmix[4],
        float(profile.memory.rss_bytes),
        float(profile.memory.vsz_bytes),
    ]
    return dict(zip(FEATURE_NAMES, values))


#: First-touch event floor of the trace generator's footprint model
#: (mirrors ``repro.workloads.generator.MIN_TOUCH_EVENTS``): bounds the
#: binomial noise of the rss/vsz estimates at ~1/sqrt(256) relative.
_FOOTPRINT_EVENTS = 256.0


def sampling_rel_sigma(
    name: str, anchor: Dict[str, float], sample_ops: int
) -> float:
    """One-sigma *relative* sampling noise of a characteristic.

    The trace generator realizes branch subtypes and page first-touches
    by seeded random draws, so a characteristic backed by ``k`` expected
    sample events carries ~``1/sqrt(k)`` relative binomial noise.  The
    stratified kind assignment makes the headline counts essentially
    exact, but applying the same bound there costs nothing (their event
    counts are the whole trace).  Returns ``inf`` for characteristics
    with no expected events at this sample size — unobservable, so no
    fidelity claim can be made about them.
    """
    from ..perf import counters as C

    if sample_ops <= 0:
        return 0.0
    if name in ("rss", "vsz"):
        events = _FOOTPRINT_EVENTS
    else:
        instructions = max(float(anchor.get(C.INST_RETIRED, 0.0)), 1.0)
        if name.endswith("(%)"):
            share = float(anchor.get(name, 0.0)) / 100.0
            if name.startswith("branch_") and name != "branch_inst(%)":
                # Subtype shares are ratios over the branch sub-stream.
                denom = (
                    float(anchor.get(C.BR_ALL, 0.0)) / instructions
                    * sample_ops
                )
            else:
                denom = float(sample_ops)
            events = share * denom
        else:
            events = float(anchor.get(name, 0.0)) / instructions * sample_ops
    if events <= 0.0:
        return float("inf")
    return 1.0 / math.sqrt(events)


def _pair_profiles() -> Dict[str, object]:
    """pair_name -> WorkloadProfile over both registered SPEC suites."""
    from ..workloads.spec2006 import cpu2006
    from ..workloads.spec2017 import cpu2017

    profiles: Dict[str, object] = {}
    for suite in (cpu2017(), cpu2006()):
        for app_input in suite.pairs():
            profiles[app_input.pair_name] = app_input.profile
    return profiles


class DriftDetector:
    """Scores one run record against ledger history and paper anchors."""

    def __init__(
        self,
        thresholds: Optional[DriftThresholds] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.thresholds = thresholds or DriftThresholds()
        self.registry = registry
        self._anchors: Optional[Dict[str, object]] = None

    # -- scoring -----------------------------------------------------------

    def check(
        self,
        current: Dict[str, object],
        history: Sequence[Dict[str, object]],
    ) -> DriftReport:
        """Run both detectors over ``current`` given comparable history."""
        report = DriftReport(
            run_id=str(current.get("run_id", "?")),
            history_runs=len(history),
        )
        self._check_drift(current, history, report)
        self._check_fidelity(current, report)
        self._check_wall(current, history, report)
        self._export(report)
        return report

    def _check_drift(
        self,
        current: Dict[str, object],
        history: Sequence[Dict[str, object]],
        report: DriftReport,
    ) -> None:
        limits = self.thresholds
        if len(history) < limits.min_history:
            report.notes.append(
                "only %d comparable prior run(s) (< %d): "
                "history baseline not trusted yet"
                % (len(history), limits.min_history)
            )
            return
        pairs: Dict[str, Dict[str, float]] = current.get("pairs") or {}
        for pair, digest in sorted(pairs.items()):
            for name, value in sorted(digest.items()):
                series = [
                    float(record["pairs"][pair][name])
                    for record in history
                    if name in (record.get("pairs") or {}).get(pair, {})
                ]
                if len(series) < limits.min_history:
                    continue
                report.checked_characteristics += 1
                score, center = robust_score(float(value), series)
                if math.isinf(score):
                    # Zero spread: apply the relative fallback band.
                    scale = max(abs(center), 1e-12)
                    rel = abs(float(value) - center) / scale
                    if rel > limits.rel_fallback:
                        report.findings.append(DriftFinding(
                            "drift", pair, name, float(value), center,
                            score,
                        ))
                elif abs(score) > limits.robust_z:
                    report.findings.append(DriftFinding(
                        "drift", pair, name, float(value), center, score,
                    ))

    def _check_fidelity(
        self, current: Dict[str, object], report: DriftReport
    ) -> None:
        limits = self.thresholds
        if self._anchors is None:
            self._anchors = _pair_profiles()
        pairs: Dict[str, Dict[str, float]] = current.get("pairs") or {}
        sample_ops = int(current.get("sample_ops") or 0)
        for pair, digest in sorted(pairs.items()):
            profile = self._anchors.get(pair)
            if profile is None:
                report.skipped_pairs.append(pair)
                continue
            report.checked_pairs += 1
            anchor = paper_anchor_vector(profile)
            for name, value in sorted(digest.items()):
                if name not in anchor:
                    continue
                expected = anchor[name]
                atol = (
                    limits.paper_atol_pct if name.endswith("(%)") else 0.0
                )
                scale = max(abs(expected), 1e-12)
                error = abs(float(value) - expected)
                rel = error / scale
                self._observe("paper_rel_error", rel)
                noise = sampling_rel_sigma(name, anchor, sample_ops)
                band = atol + (
                    limits.paper_rtol + limits.noise_z * noise
                ) * abs(expected)
                if error > band:
                    report.findings.append(DriftFinding(
                        "fidelity", pair, name, float(value), expected, rel,
                    ))

    def _check_wall(
        self,
        current: Dict[str, object],
        history: Sequence[Dict[str, object]],
        report: DriftReport,
    ) -> None:
        limits = self.thresholds
        if len(history) < limits.min_history:
            return
        series = [
            float((record.get("manifest") or {}).get("wall_time_seconds", 0.0))
            for record in history
        ]
        baseline = ewma(series, limits.ewma_alpha)
        wall = float(
            (current.get("manifest") or {}).get("wall_time_seconds", 0.0)
        )
        if baseline > 0.0 and wall > baseline * (1.0 + limits.wall_tolerance):
            finding = DriftFinding(
                "wall", "(sweep)", "wall_time_seconds", wall, baseline,
                wall / baseline - 1.0,
            )
            if limits.fail_on_wall:
                report.findings.append(finding)
            else:
                report.warnings.append(finding)

    # -- metrics export ----------------------------------------------------

    def _observe(self, name: str, value: float) -> None:
        if self.registry is not None:
            self.registry.histogram(
                name, "drift-watchdog score distribution",
                buckets=ERROR_BUCKETS,
            ).observe(value)

    def _export(self, report: DriftReport) -> None:
        """Gauge the pass/fail totals and flagged scores into the registry."""
        if self.registry is None:
            return
        self.registry.gauge(
            "drift_findings", "characteristics flagged by the drift check"
        ).set(sum(1 for f in report.findings if f.kind == "drift"))
        self.registry.gauge(
            "fidelity_findings",
            "characteristics outside the paper-anchor tolerance",
        ).set(sum(1 for f in report.findings if f.kind == "fidelity"))
        self.registry.gauge(
            "drift_history_runs", "comparable prior runs baselined against"
        ).set(report.history_runs)
        for finding in report.findings + report.warnings:
            self.registry.gauge(
                "drift_score",
                "score of each flagged pair/characteristic "
                "(robust z for drift, relative error otherwise)",
            ).labels(
                kind=finding.kind, pair=finding.pair,
                characteristic=finding.characteristic,
            ).set(finding.score)


def check_ledger(
    ledger: RunLedger,
    thresholds: Optional[DriftThresholds] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Optional[DriftReport]:
    """Watchdog pass over a ledger's newest run.

    Returns ``None`` when the ledger holds no runs (an empty ledger is
    healthy, not broken — ``repro obs check`` exits 0 on it).
    """
    runs = ledger.runs()
    if not runs:
        return None
    current = runs[-1]
    history = ledger.comparable_history(current)
    detector = DriftDetector(thresholds=thresholds, registry=registry)
    return detector.check(current, history)
