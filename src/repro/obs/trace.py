"""Hierarchical span tracer: the "where did the time go" half of obs.

A :class:`Tracer` records *spans* — named, attributed, nested timing
records — into a bounded in-memory ring buffer and, optionally, an
append-only JSONL sink.  Spans form a tree: every span opened while
another is active becomes its child, mirroring the pipeline's call
structure (``suite.run`` → ``pair.run`` → ``trace.gen`` /
``engine.exec`` / ``counters.validate`` → stats stages).

Design constraints, in order:

1. **Determinism.**  Span ids are sequential start-order integers and
   the buffer is finish-ordered, so under a fixed seed two runs produce
   the same span names, nesting, and attributes — only the timing floats
   differ.  Tests pin the tree shape; nothing here reads a clock beyond
   ``perf_counter``/``process_time``.
2. **Picklability.**  Finished spans are plain dicts of JSON types, so
   worker processes can ship their spans back through the existing
   result channel and the parent can :meth:`graft` them into its own
   tree.
3. **Boundedness.**  The ring buffer drops the *oldest* spans once
   ``capacity`` is reached; the JSONL sink (when configured) still sees
   every span, so long sweeps trade memory for disk, never correctness.

Spans are emitted on *completion*: in the buffer and the JSONL file,
children always precede their parent.  Consumers rebuild the tree from
the ``parent`` ids (see :mod:`repro.obs.summarize`).
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Dict, Iterable, List, Optional

from ..errors import ReproError

#: Span-record schema version, stamped on every JSONL line.  Version 2
#: added the ``t0_s`` start offset and the recording ``pid`` — both
#: additive, so version-1 consumers keep working.
SPAN_SCHEMA = 2

#: Default ring-buffer capacity (finished spans kept in memory).
DEFAULT_CAPACITY = 4096


class ObsError(ReproError):
    """Raised for observability-layer misuse (bad sink, bad graft)."""


class SpanHandle:
    """Context manager for one live span.

    Returned by :meth:`Tracer.span`; use :meth:`set` to attach outcome
    attributes discovered while the span is open (cache result, attempt
    count, ...).  Exiting with an exception records ``status="error"``
    and the exception type, then lets the exception propagate.
    """

    __slots__ = (
        "_tracer", "name", "span_id", "parent_id", "depth", "attrs",
        "_t0", "_wall0", "_cpu0",
    )

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], depth: int,
                 attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attrs = attrs

    def set(self, key: str, value: object) -> "SpanHandle":
        """Attach (or overwrite) one attribute on the live span."""
        self.attrs[key] = value
        return self

    def __enter__(self) -> "SpanHandle":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        profiler = self._tracer._profiler
        if profiler is not None:
            profiler.span_started(self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        profiler = self._tracer._profiler
        if profiler is not None:
            profiler.span_finished(self.name)
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        status = "ok"
        if exc_type is not None:
            status = "error"
            self.attrs.setdefault("error_type", exc_type.__name__)
        self._tracer._finish(self, wall, cpu, status)
        return False  # never swallow


class _NullSpan:
    """Shared no-op stand-in used when tracing is disabled.

    Stateless and reentrant: one module-level instance serves every
    disabled call site, so a disabled hook costs one attribute lookup
    and an (empty) context-manager protocol round trip.
    """

    __slots__ = ()

    def set(self, key: str, value: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton no-op span (also what ``obs.profile`` returns when off).
NULL_SPAN = _NullSpan()


class Tracer:
    """Records hierarchical spans into a ring buffer and optional sink.

    Args:
        capacity: Maximum finished spans retained in memory (oldest
            dropped first).  The sink is unaffected by this bound.
        sink_path: Optional path of a JSONL file to append every
            finished span to.  Opened eagerly so a bad path fails at
            construction, not mid-sweep.

    One tracer serves one process; the process pool gives each worker
    its own (sinkless) tracer whose spans travel back to the parent as
    plain dicts and are re-parented with :meth:`graft`.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 sink_path: Optional[str] = None):
        if capacity < 1:
            raise ObsError("tracer capacity must be >= 1, got %r" % capacity)
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self._stack: List[SpanHandle] = []
        self._next_id = 1
        self._dropped = 0
        self._sink = None
        #: Optional :class:`~repro.obs.profiler.SpanProfiler` notified on
        #: span enter/exit; ``None`` keeps the hot path at one attribute
        #: read per span.
        self._profiler = None
        #: Clock base for span start offsets: ``t0_s`` is seconds of
        #: ``perf_counter`` since tracer construction, and ``epoch_unix``
        #: maps that offset back onto the shared wall clock so traces from
        #: different processes can be aligned on one timeline.
        self._t_init = time.perf_counter()
        self.epoch_unix = time.time()
        self.pid = os.getpid()
        self.sink_path = sink_path
        if sink_path is not None:
            try:
                self._sink = open(sink_path, "a", encoding="utf-8")
            except OSError as error:
                raise ObsError(
                    "cannot open trace sink %s: %s" % (sink_path, error)
                ) from error

    def set_profiler(self, profiler) -> None:
        """Attach a span-scoped profiler (or detach with ``None``).

        The profiler's ``span_started``/``span_finished`` hooks fire on
        every span enter/exit; it decides internally which stage names
        activate collection (see :class:`repro.obs.profiler.SpanProfiler`).
        """
        self._profiler = profiler

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs: object) -> SpanHandle:
        """Open a span as a child of the innermost active span."""
        parent = self._stack[-1] if self._stack else None
        handle = SpanHandle(
            tracer=self,
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(handle)
        return handle

    def record(self, name: str, wall_s: float = 0.0, cpu_s: float = 0.0,
               **attrs: object) -> Dict[str, object]:
        """Record an already-measured span without the context manager.

        Used for events whose duration was timed externally (cache hits)
        or that are instantaneous markers (``pair.failure``).
        """
        parent = self._stack[-1] if self._stack else None
        # The externally timed work ended "now", so it started wall_s ago.
        t0_s = max(time.perf_counter() - self._t_init - wall_s, 0.0)
        record = self._make_record(
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            depth=len(self._stack),
            name=name,
            wall_s=wall_s,
            cpu_s=cpu_s,
            status="ok",
            attrs=dict(attrs),
            t0_s=t0_s,
            pid=self.pid,
        )
        self._next_id += 1
        self._emit(record)
        return record

    def _finish(self, handle: SpanHandle, wall_s: float, cpu_s: float,
                status: str) -> None:
        if not self._stack or self._stack[-1] is not handle:
            # Mis-nested exit (a hook leaked a handle): fail loudly in
            # tests rather than silently corrupting the tree.
            raise ObsError(
                "span %r finished out of order" % handle.name
            )
        self._stack.pop()
        self._emit(self._make_record(
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            depth=handle.depth,
            name=handle.name,
            wall_s=wall_s,
            cpu_s=cpu_s,
            status=status,
            attrs=handle.attrs,
            t0_s=handle._wall0 - self._t_init,
            pid=self.pid,
        ))

    @staticmethod
    def _make_record(span_id: int, parent_id: Optional[int], depth: int,
                     name: str, wall_s: float, cpu_s: float, status: str,
                     attrs: Dict[str, object], t0_s: float = 0.0,
                     pid: int = 0) -> Dict[str, object]:
        return {
            "schema": SPAN_SCHEMA,
            "id": span_id,
            "parent": parent_id,
            "depth": depth,
            "name": name,
            "t0_s": t0_s,
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "status": status,
            "attrs": attrs,
            "pid": pid,
        }

    def _emit(self, record: Dict[str, object]) -> None:
        if len(self._buffer) == self.capacity:
            self._dropped += 1
        self._buffer.append(record)
        if self._sink is not None:
            self._sink.write(json.dumps(record, sort_keys=True) + "\n")
            self._sink.flush()

    # -- introspection -----------------------------------------------------

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring buffer (still in the sink)."""
        return self._dropped

    def in_span(self, name: str) -> bool:
        """Is the *innermost* active span named ``name``?"""
        return bool(self._stack) and self._stack[-1].name == name

    def finished(self) -> List[Dict[str, object]]:
        """Finished spans currently in the ring buffer (finish order)."""
        return list(self._buffer)

    def drain(self) -> List[Dict[str, object]]:
        """Return and clear the buffered spans (the worker hand-off)."""
        records = list(self._buffer)
        self._buffer.clear()
        return records

    # -- cross-process stitching -------------------------------------------

    def graft(self, records: Iterable[Dict[str, object]],
              extra_root_attrs: Optional[Dict[str, object]] = None,
              rebase_s: float = 0.0) -> int:
        """Adopt spans recorded by another tracer (a pool worker).

        Ids are remapped into this tracer's sequence, roots of the
        grafted batch are re-parented under the innermost active span,
        depths are shifted accordingly, and ``extra_root_attrs`` (e.g.
        ``{"cache": "miss"}``) are merged into the batch's root spans.
        ``rebase_s`` shifts the batch's ``t0_s`` start offsets into this
        tracer's clock frame (the worker's epoch minus ours); the
        recording ``pid`` is preserved so timeline consumers keep one
        track per worker.  Returns the number of spans grafted.
        """
        parent = self._stack[-1] if self._stack else None
        batch = list(records)
        base_depth = len(self._stack)
        # Records arrive finish-ordered (children before parents), so the
        # id remapping needs a first pass over the whole batch before any
        # parent reference can be rewritten.
        id_map: Dict[int, int] = {}
        for record in batch:
            old_id = record.get("id")
            if not isinstance(old_id, int):
                raise ObsError("grafted span record has no integer id")
            id_map[old_id] = self._next_id
            self._next_id += 1
        count = 0
        for record in batch:
            old_parent = record.get("parent")
            attrs = dict(record.get("attrs") or {})
            if old_parent is None:
                new_parent = parent.span_id if parent else None
                if extra_root_attrs:
                    attrs.update(extra_root_attrs)
            else:
                # A parent missing from the batch means the worker's ring
                # buffer evicted it; the orphan attaches under the graft
                # point instead of dangling.
                new_parent = id_map.get(
                    old_parent, parent.span_id if parent else None
                )
            self._emit(self._make_record(
                span_id=id_map[record["id"]],
                parent_id=new_parent,
                depth=base_depth + int(record.get("depth") or 0),
                name=str(record.get("name")),
                wall_s=float(record.get("wall_s") or 0.0),
                cpu_s=float(record.get("cpu_s") or 0.0),
                status=str(record.get("status") or "ok"),
                attrs=attrs,
                t0_s=float(record.get("t0_s") or 0.0) + rebase_s,
                pid=int(record.get("pid") or self.pid),
            ))
            count += 1
        return count

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Flush and close the sink (idempotent)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
