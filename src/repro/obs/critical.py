"""Critical-path and worker-utilization analysis over a span tree.

Two questions the per-stage summary table cannot answer:

* **Critical path** — through all the parallelism, which chain of spans
  actually determined the sweep's end-to-end wall time?  Speeding up
  anything off that chain cannot move the total.
* **Utilization** — how busy was each worker, where are the scheduling
  gaps, and which pairs straggled?

Both need the span *timeline* (``t0_s`` start offsets, schema >= 2),
not just durations.  The critical path is computed by walking backwards
from the root span's end: at every instant the algorithm descends into
the child span that finished last and still covers the cursor, so every
instant of the root's wall time is attributed to exactly one span — the
per-stage on-path self times therefore sum to the root's wall time by
construction (the property the acceptance tests lock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .summarize import TraceFileError

#: Span name the runner gives per-pair work (busy time for utilization).
PAIR_SPAN = "pair.run"


def _t0(span: Dict[str, object]) -> float:
    return float(span.get("t0_s") or 0.0)


def _t1(span: Dict[str, object]) -> float:
    return _t0(span) + float(span.get("wall_s") or 0.0)


def _require_timeline(spans: Sequence[Dict[str, object]]) -> None:
    if spans and not any(
        isinstance(span.get("t0_s"), (int, float)) for span in spans
    ):
        raise TraceFileError(
            "trace has no t0_s start offsets (span schema < 2); re-record "
            "it with --trace under this version to analyze the timeline"
        )


def _children_index(
    spans: Sequence[Dict[str, object]],
) -> Dict[object, List[Dict[str, object]]]:
    children: Dict[object, List[Dict[str, object]]] = {}
    known = {span.get("id") for span in spans}
    for span in spans:
        parent = span.get("parent")
        children.setdefault(
            parent if parent in known else None, []
        ).append(span)
    return children


def _pick_root(
    spans: Sequence[Dict[str, object]],
    children: Dict[object, List[Dict[str, object]]],
) -> Dict[str, object]:
    roots = children.get(None, [])
    if not roots:
        raise TraceFileError("trace holds no root span")
    # The newest longest sweep: prefer the root with the largest wall
    # time (ties to the later start) so a file holding several sweeps
    # analyzes the dominant one.
    return max(roots, key=lambda span: (float(span.get("wall_s") or 0.0),
                                        _t0(span)))


# ---------------------------------------------------------------------------
# Critical path
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PathSegment:
    """One on-path interval attributed to a single span."""

    name: str
    span_id: int
    start_s: float
    duration_s: float
    depth: int


@dataclass(frozen=True)
class StageShare:
    """Aggregated on-path self time of every span sharing one name."""

    name: str
    seconds: float
    share: float
    segments: int


@dataclass
class CriticalPathReport:
    """What :func:`critical_path` extracts from one trace."""

    root_name: str
    root_id: int
    total_s: float
    segments: List[PathSegment]
    stages: List[StageShare] = field(default_factory=list)

    @property
    def attributed_s(self) -> float:
        return sum(segment.duration_s for segment in self.segments)

    def render(self, limit: Optional[int] = None) -> str:
        header = "%-28s %7s %12s %7s" % (
            "stage (on critical path)", "segs", "self_ms", "share"
        )
        lines = [
            "critical path of %s (span %d): %.2f ms wall"
            % (self.root_name, self.root_id, 1e3 * self.total_s),
            header,
            "-" * len(header),
        ]
        for stage in self.stages:
            lines.append(
                "%-28s %7d %12.2f %6.1f%%"
                % (stage.name, stage.segments, 1e3 * stage.seconds,
                   100.0 * stage.share)
            )
        shown = self.segments[:limit] if limit else self.segments
        lines.append("")
        lines.append("chain (time order%s):"
                     % (", first %d segments" % limit
                        if limit and len(self.segments) > limit else ""))
        for segment in shown:
            lines.append(
                "  %10.2f ms  %s%-28s %10.2f ms"
                % (1e3 * segment.start_s, "  " * segment.depth,
                   segment.name, 1e3 * segment.duration_s)
            )
        return "\n".join(lines)


def critical_path(
    spans: Sequence[Dict[str, object]],
    root_id: Optional[int] = None,
) -> CriticalPathReport:
    """The longest dependency chain through the span tree.

    Walks backwards from the root's end time; at each step the cursor
    descends into the child that finished last before it.  Every instant
    of the root's wall time lands on exactly one span, so the stage
    self-times sum to the root's wall time.
    """
    _require_timeline(spans)
    children = _children_index(spans)
    if root_id is not None:
        matches = [span for span in spans if span.get("id") == root_id]
        if not matches:
            raise TraceFileError("no span with id %r in trace" % root_id)
        root = matches[0]
    else:
        root = _pick_root(spans, children)

    segments: List[PathSegment] = []

    def attribute(span: Dict[str, object], lo: float, hi: float,
                  depth: int) -> None:
        """Attribute [lo, hi] of wall time to ``span`` and its children."""
        cursor = hi
        ordered = sorted(
            children.get(span.get("id"), []),
            key=lambda child: (_t1(child), _t0(child)),
            reverse=True,
        )
        for child in ordered:
            if cursor <= lo:
                break
            child_end = min(_t1(child), cursor)
            child_start = max(_t0(child), lo)
            if child_end <= child_start:
                continue
            if cursor > child_end:
                # The gap after the last-finishing child is the parent's
                # own on-path time.
                segments.append(PathSegment(
                    name=str(span.get("name")),
                    span_id=int(span.get("id") or 0),
                    start_s=child_end,
                    duration_s=cursor - child_end,
                    depth=depth,
                ))
            attribute(child, child_start, child_end, depth + 1)
            cursor = child_start
        if cursor > lo:
            segments.append(PathSegment(
                name=str(span.get("name")),
                span_id=int(span.get("id") or 0),
                start_s=lo,
                duration_s=cursor - lo,
                depth=depth,
            ))

    total = float(root.get("wall_s") or 0.0)
    attribute(root, _t0(root), _t1(root), 0)
    segments.sort(key=lambda segment: segment.start_s)

    by_name: Dict[str, List[PathSegment]] = {}
    for segment in segments:
        by_name.setdefault(segment.name, []).append(segment)
    stages = [
        StageShare(
            name=name,
            seconds=sum(s.duration_s for s in segs),
            share=(
                sum(s.duration_s for s in segs) / total if total > 0 else 0.0
            ),
            segments=len(segs),
        )
        for name, segs in by_name.items()
    ]
    stages.sort(key=lambda stage: (-stage.seconds, stage.name))
    return CriticalPathReport(
        root_name=str(root.get("name")),
        root_id=int(root.get("id") or 0),
        total_s=total,
        segments=segments,
        stages=stages,
    )


def critical_path_seconds(
    spans: Sequence[Dict[str, object]],
) -> Optional[float]:
    """Best-effort critical-path length for ledger records.

    ``None`` when the trace cannot be analyzed (no roots, no timeline) —
    the ledger field is optional by contract.
    """
    try:
        return critical_path(spans).total_s
    except TraceFileError:
        return None


# ---------------------------------------------------------------------------
# Worker utilization
# ---------------------------------------------------------------------------

def _merge_intervals(
    intervals: List[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


@dataclass(frozen=True)
class WorkerLine:
    """Busy/idle accounting of one process over the sweep window."""

    pid: int
    is_parent: bool
    pairs: int
    cache_hits: int
    busy_s: float
    idle_s: float
    utilization: float
    longest_gap_s: float
    last_end_s: float


@dataclass
class UtilizationReport:
    """What :func:`utilization` extracts from one trace."""

    window_s: float
    workers: List[WorkerLine]

    @property
    def pool_utilization(self) -> float:
        """Busy fraction across every track (parent included)."""
        busy = sum(line.busy_s for line in self.workers)
        denom = self.window_s * len(self.workers)
        return busy / denom if denom > 0 else 0.0

    @property
    def straggler_s(self) -> float:
        """How long the last track kept working after the first finished."""
        if len(self.workers) < 2:
            return 0.0
        ends = [line.last_end_s for line in self.workers]
        return max(ends) - min(ends)

    def render(self) -> str:
        header = "%-16s %6s %6s %10s %10s %6s %10s" % (
            "track", "pairs", "hits", "busy_ms", "idle_ms", "util", "gap_ms"
        )
        lines = [
            "sweep window: %.2f ms over %d track(s)"
            % (1e3 * self.window_s, len(self.workers)),
            header,
            "-" * len(header),
        ]
        for line in self.workers:
            label = "parent %d" % line.pid if line.is_parent else (
                "worker %d" % line.pid
            )
            lines.append(
                "%-16s %6d %6d %10.2f %10.2f %5.1f%% %10.2f"
                % (label, line.pairs, line.cache_hits, 1e3 * line.busy_s,
                   1e3 * line.idle_s, 100.0 * line.utilization,
                   1e3 * line.longest_gap_s)
            )
        lines.append(
            "pool utilization %.1f%%, straggler spread %.2f ms"
            % (100.0 * self.pool_utilization, 1e3 * self.straggler_s)
        )
        return "\n".join(lines)


def utilization(
    spans: Sequence[Dict[str, object]],
    pair_span: str = PAIR_SPAN,
) -> UtilizationReport:
    """Per-worker busy/idle intervals from pair-span start/end times.

    Busy time is the union of ``pair.run`` intervals recorded by each
    pid — cache hits, simulated misses, *and retry attempts* all count
    (a retried pair occupies its track for every attempt).  Idle time is
    the rest of the sweep window (the analyzed root span's interval),
    and the longest internal gap exposes scheduling stalls.
    """
    _require_timeline(spans)
    children = _children_index(spans)
    root = _pick_root(spans, children)
    window_start, window_end = _t0(root), _t1(root)
    window = max(window_end - window_start, 0.0)
    main_pid = int(root.get("pid") or 0)

    by_pid: Dict[int, List[Dict[str, object]]] = {}
    for span in spans:
        if span.get("name") != pair_span:
            continue
        # Only spans inside the analyzed window (a file can hold several
        # sweeps; accounting must not mix them).
        if _t1(span) < window_start or _t0(span) > window_end:
            continue
        by_pid.setdefault(int(span.get("pid") or 0), []).append(span)

    lines: List[WorkerLine] = []
    for pid in sorted(by_pid):
        batch = by_pid[pid]
        intervals = _merge_intervals([
            (max(_t0(span), window_start), min(_t1(span), window_end))
            for span in batch
        ])
        busy = sum(end - start for start, end in intervals)
        gaps: List[float] = []
        if intervals:
            gaps.append(intervals[0][0] - window_start)
            for (_, prev_end), (next_start, _) in zip(
                intervals, intervals[1:]
            ):
                gaps.append(next_start - prev_end)
            gaps.append(window_end - intervals[-1][1])
        hits = sum(
            1 for span in batch
            if (span.get("attrs") or {}).get("cache") == "hit"
        )
        lines.append(WorkerLine(
            pid=pid,
            is_parent=pid == main_pid,
            pairs=len(batch),
            cache_hits=hits,
            busy_s=busy,
            idle_s=max(window - busy, 0.0),
            utilization=busy / window if window > 0 else 0.0,
            longest_gap_s=max(gaps) if gaps else 0.0,
            last_end_s=max(_t1(span) for span in batch),
        ))
    # Workers first in pid order, parent track last — stable and easy to
    # eyeball for skew.
    lines.sort(key=lambda line: (line.is_parent, line.pid))
    return UtilizationReport(window_s=window, workers=lines)
