"""Chrome trace-event export: span JSONL in, Perfetto timeline out.

Converts the span records a ``--trace`` run writes into the Trace Event
Format that ``chrome://tracing`` and https://ui.perfetto.dev load
directly: one complete (``"X"``) event per span, one track per recording
process (the parent sweep plus each pool worker), and derived counter
(``"C"``) events — pairs completed and cache hits over time — so the
sweep's progress reads off the same timeline.

Only spans carrying a ``t0_s`` start offset (span schema >= 2) can be
placed on a timeline; older records are counted and skipped so a mixed
file still exports everything it can.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .summarize import TraceFileError, load_spans

#: Trace Event Format "other data" stamp.
TIMELINE_SCHEMA = 1


def _has_timeline(span: Dict[str, object]) -> bool:
    return isinstance(span.get("t0_s"), (int, float))


def _main_pid(spans: Sequence[Dict[str, object]]) -> int:
    """The parent process: the pid recording the root spans."""
    for span in spans:
        if span.get("parent") is None:
            return int(span.get("pid") or 0)
    return int(spans[0].get("pid") or 0) if spans else 0


def chrome_trace(
    spans: Sequence[Dict[str, object]],
    metrics: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build a Trace Event Format document from span records.

    Args:
        spans: Records from :func:`repro.obs.summarize.load_spans`.
        metrics: Optional :meth:`MetricsRegistry.dump` snapshot; counter
            and gauge families are appended as one counter event at the
            end of the timeline.

    Raises:
        TraceFileError: When no span carries a timeline position.
    """
    placeable = [span for span in spans if _has_timeline(span)]
    skipped = len(spans) - len(placeable)
    if spans and not placeable:
        raise TraceFileError(
            "trace has no t0_s start offsets (span schema < 2); re-record "
            "it with --trace under this version to export a timeline"
        )
    main_pid = _main_pid(placeable)
    events: List[Dict[str, object]] = []
    pids = []
    for span in placeable:
        pid = int(span.get("pid") or 0)
        if pid not in pids:
            pids.append(pid)
        args = dict(span.get("attrs") or {})
        args["status"] = span.get("status", "ok")
        args["span_id"] = span.get("id")
        events.append({
            "name": str(span.get("name")),
            "cat": "span",
            "ph": "X",
            "ts": round(float(span["t0_s"]) * 1e6, 3),
            "dur": round(float(span.get("wall_s") or 0.0) * 1e6, 3),
            "pid": pid,
            "tid": pid,
            "args": args,
        })

    # One named track per recording process, workers labelled as such.
    for pid in pids:
        label = "sweep (parent)" if pid == main_pid else "worker %d" % pid
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": pid,
            "args": {"name": label},
        })

    # Derived counters: sweep progress over time, sampled at each
    # pair-span end.  Deterministic given the trace (sorted by end time,
    # span id breaking exact ties).
    pair_spans = sorted(
        (span for span in placeable if span.get("name") == "pair.run"),
        key=lambda span: (
            float(span["t0_s"]) + float(span.get("wall_s") or 0.0),
            int(span.get("id") or 0),
        ),
    )
    done = hits = 0
    for span in pair_spans:
        done += 1
        if (span.get("attrs") or {}).get("cache") == "hit":
            hits += 1
        end = float(span["t0_s"]) + float(span.get("wall_s") or 0.0)
        events.append({
            "name": "sweep progress", "ph": "C", "pid": main_pid,
            "ts": round(end * 1e6, 3),
            "args": {"pairs_completed": done, "cache_hits": hits},
        })

    if metrics:
        end_ts = max(
            (
                float(span["t0_s"]) + float(span.get("wall_s") or 0.0)
                for span in placeable
            ),
            default=0.0,
        )
        snapshot: Dict[str, float] = {}
        for name, family in sorted(metrics.items()):
            if family.get("kind") not in ("counter", "gauge"):
                continue
            for child in family.get("children", []):
                labels = ",".join(
                    "%s=%s" % (k, v) for k, v in child.get("labels", [])
                )
                key = "%s{%s}" % (name, labels) if labels else name
                snapshot[key] = float(child.get("value", 0.0))
        if snapshot:
            events.append({
                "name": "metrics", "ph": "C", "pid": main_pid,
                "ts": round(end_ts * 1e6, 3),
                "args": snapshot,
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TIMELINE_SCHEMA,
            "spans": len(placeable),
            "skipped_spans": skipped,
            "workers": [pid for pid in pids if pid != main_pid],
        },
    }


def export_chrome_trace(
    trace_path: str,
    output_path: str,
    metrics: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Read a span JSONL file and write the chrome JSON next to it.

    Returns the document for callers that want the event counts.
    """
    document = chrome_trace(load_spans(trace_path), metrics=metrics)
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.write("\n")
    return document
