"""The 20 microarchitecture-independent PCA characteristics (Table VIII).

Order and naming follow the paper's Table VIII: raw counter totals for
instructions, memory micro-ops and branch subtypes; the derived mix
percentages; and the two footprint metrics.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..perf import counters as C
from ..perf.report import CounterReport

#: Feature names in Table VIII order.
FEATURE_NAMES: Tuple[str, ...] = (
    C.INST_RETIRED,
    C.MEM_LOADS,
    C.MEM_STORES,
    "load_uops(%)",
    "store_uops(%)",
    "total_mem_uops(%)",
    C.BR_ALL,
    "branch_inst(%)",
    C.BR_CONDITIONAL,
    C.BR_DIRECT_JMP,
    C.BR_DIRECT_NEAR_CALL,
    C.BR_INDIRECT_JUMP,
    C.BR_INDIRECT_NEAR_RETURN,
    "branch_conditional(%)",
    "branch_direct_jump(%)",
    "branch_near_call(%)",
    "branch_indirect_jump_non_call_ret(%)",
    "branch_indirect_near_return(%)",
    "rss",
    "vsz",
)

N_FEATURES = len(FEATURE_NAMES)


def feature_vector(report: CounterReport) -> np.ndarray:
    """Extract the 20-characteristic vector of one pair."""
    subtype_pct = report.branch_subtype_pct()
    values = [
        report[C.INST_RETIRED],
        report[C.MEM_LOADS],
        report[C.MEM_STORES],
        report.load_pct,
        report.store_pct,
        report.memory_pct,
        report[C.BR_ALL],
        report.branch_pct,
        report[C.BR_CONDITIONAL],
        report[C.BR_DIRECT_JMP],
        report[C.BR_DIRECT_NEAR_CALL],
        report[C.BR_INDIRECT_JUMP],
        report[C.BR_INDIRECT_NEAR_RETURN],
        subtype_pct[0],
        subtype_pct[1],
        subtype_pct[2],
        subtype_pct[3],
        subtype_pct[4],
        report.rss_bytes,
        report.vsz_bytes,
    ]
    return np.asarray(values, dtype=np.float64)


def feature_matrix(
    reports: Sequence[CounterReport],
) -> Tuple[np.ndarray, List[str]]:
    """Stack pairs into the paper's [n_pairs x 20] matrix.

    Returns the matrix and the pair names (row labels), in input order.
    """
    if not reports:
        raise AnalysisError("no reports to build a feature matrix from")
    matrix = np.vstack([feature_vector(report) for report in reports])
    labels = [report.profile.pair_name for report in reports]
    return matrix, labels
