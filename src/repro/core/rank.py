"""Design-ranking validation (extension beyond the paper).

The deepest test of a representative subset: architects use suites to
*rank* design candidates, so a good subset must produce the same ranking
of hardware configurations as the full suite.  This module simulates a
group's pairs across several candidate configurations — holding each
pair's address stream and calibration fixed to the reference machine, so
only the hardware changes — and compares the full-population ranking with
the subset-weighted ranking by rank correlation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..config import SystemConfig, haswell_e5_2650l_v3
from ..errors import AnalysisError
from ..stats.rank import kendall_tau, spearman_rho
from ..uarch.core import SimulatedCore
from ..workloads.calibrate import solve_pipeline_params
from ..workloads.generator import TraceGenerator
from ..workloads.profile import WorkloadProfile
from .subset import SubsetResult


@dataclass(frozen=True)
class RankingValidation:
    """Agreement between full-suite and subset design rankings."""

    config_names: Tuple[str, ...]
    full_scores: Tuple[float, ...]      # mean IPC per config, full group
    subset_scores: Tuple[float, ...]    # weighted subset estimate per config
    spearman: float
    kendall: float

    @property
    def rankings_agree(self) -> bool:
        """True when the orderings are identical (tau == 1)."""
        return math.isclose(self.kendall, 1.0, rel_tol=0.0, abs_tol=1e-9)


class DesignRanker:
    """Simulates one group across candidate configurations.

    Args:
        reference: The calibration machine (traces and pipeline params are
            derived here and held fixed across candidates).
        sample_ops: Trace length per pair.
    """

    def __init__(
        self,
        reference: SystemConfig = None,
        sample_ops: int = 15_000,
    ):
        if sample_ops <= 0:
            raise AnalysisError("sample_ops must be positive")
        self.reference = reference or haswell_e5_2650l_v3()
        self.sample_ops = sample_ops
        self._generator = TraceGenerator(self.reference)
        self._traces: Dict[str, object] = {}

    def _trace(self, profile: WorkloadProfile):
        key = profile.pair_name
        if key not in self._traces:
            self._traces[key] = (
                self._generator.generate(profile, n_ops=self.sample_ops),
                solve_pipeline_params(profile, self.reference),
            )
        return self._traces[key]

    def ipc_matrix(
        self,
        profiles: Sequence[WorkloadProfile],
        configs: Dict[str, SystemConfig],
    ) -> np.ndarray:
        """Simulated IPC for every (pair, config); rows follow profiles."""
        if not profiles:
            raise AnalysisError("need at least one profile")
        if not configs:
            raise AnalysisError("need at least one configuration")
        matrix = np.empty((len(profiles), len(configs)))
        for column, config in enumerate(configs.values()):
            core = SimulatedCore(config)
            for row, profile in enumerate(profiles):
                trace, params = self._trace(profile)
                matrix[row, column] = core.run(trace, params=params).ipc
        return matrix

    def validate(
        self,
        subset: SubsetResult,
        profiles: Sequence[WorkloadProfile],
        configs: Dict[str, SystemConfig],
    ) -> RankingValidation:
        """Compare full-group and subset-weighted design rankings.

        Args:
            subset: The subset whose representativeness is being tested.
            profiles: All pairs of the subset's group, ordered to match
                ``subset.pair_names``.
            configs: Candidate configurations, keyed by display name.
        """
        names = [profile.pair_name for profile in profiles]
        if tuple(names) != subset.pair_names:
            raise AnalysisError(
                "profiles must match the subset's clustered pairs in order"
            )
        matrix = self.ipc_matrix(profiles, configs)
        full_scores = matrix.mean(axis=0)

        labels = subset.clustering.labels(subset.n_clusters)
        index = {name: i for i, name in enumerate(names)}
        weights = np.zeros(len(profiles))
        n = len(profiles)
        for cluster in range(subset.n_clusters):
            members = np.flatnonzero(labels == cluster)
            champions = [
                i for i in members if names[i] in subset.selected
            ]
            if len(champions) != 1:
                raise AnalysisError(
                    "cluster %d lacks a unique representative" % cluster
                )
            weights[champions[0]] = len(members) / n
        subset_scores = weights @ matrix

        return RankingValidation(
            config_names=tuple(configs),
            full_scores=tuple(float(v) for v in full_scores),
            subset_scores=tuple(float(v) for v in subset_scores),
            spearman=spearman_rho(full_scores, subset_scores),
            kendall=kendall_tau(full_scores, subset_scores),
        )


def candidate_configs() -> Dict[str, SystemConfig]:
    """A small design space for ranking studies: the reference machine
    plus a wider L2, a weaker predictor, slower DRAM, a deeper pipeline
    (costlier flushes), and a tiny L3.  All five differ in structures the
    simulation actually exercises with calibration held fixed."""
    from dataclasses import replace

    from ..config import CacheConfig, PipelineConfig

    base = haswell_e5_2650l_v3()
    return {
        "table-I": base,
        "wide-l2": replace(
            base,
            l2=CacheConfig("L2", 256 * 1024, 32, hit_latency=12,
                           miss_penalty=24),
        ),
        "bimodal-bp": base.with_predictor("bimodal"),
        "slow-dram": replace(
            base, pipeline=PipelineConfig(dram_latency=420)
        ),
        "deep-pipeline": replace(
            base, pipeline=PipelineConfig(mispredict_penalty=30)
        ),
        "tiny-l3": replace(
            base,
            l3=CacheConfig("L3", 512 * 64 * 15, 15, hit_latency=36,
                           miss_penalty=174, shared=True),
        ),
    }
