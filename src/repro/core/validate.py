"""Subset representativeness validation (extension beyond the paper).

The paper's subset claims to "represent the complete suite".  Following the
CPU2006 redundancy literature (Phansalkar et al.), this module quantifies
that claim: estimate suite-level metric means from the subset alone — each
representative weighted by its cluster's size — and report the relative
error against the full-suite means.  A subset that merely minimizes time
would fail this check; a representative one passes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from .metrics import PairMetrics
from .subset import SubsetResult

#: Metrics validated by default, as attribute names of PairMetrics.
DEFAULT_METRICS: Tuple[str, ...] = (
    "ipc",
    "load_pct",
    "store_pct",
    "branch_pct",
    "l1_miss_pct",
    "l2_miss_pct",
    "l3_miss_pct",
    "mispredict_pct",
)


@dataclass(frozen=True)
class MetricValidation:
    """Full-suite vs subset-estimated mean of one metric."""

    metric: str
    full_mean: float
    subset_estimate: float

    @property
    def relative_error(self) -> float:
        if self.full_mean == 0:
            return 0.0 if self.subset_estimate == 0 else float("inf")
        return abs(self.subset_estimate - self.full_mean) / abs(self.full_mean)


@dataclass(frozen=True)
class SubsetValidation:
    """Representativeness report for one subset."""

    group: str
    n_clusters: int
    results: Tuple[MetricValidation, ...]

    def result(self, metric: str) -> MetricValidation:
        for entry in self.results:
            if entry.metric == metric:
                return entry
        raise AnalysisError("metric %r was not validated" % metric)

    @property
    def max_relative_error(self) -> float:
        return max(entry.relative_error for entry in self.results)

    @property
    def mean_relative_error(self) -> float:
        return float(np.mean([entry.relative_error for entry in self.results]))


def validate_subset(
    result: SubsetResult,
    metrics: Sequence[PairMetrics],
    metric_names: Sequence[str] = DEFAULT_METRICS,
) -> SubsetValidation:
    """Check that cluster-weighted subset means reproduce suite means.

    Args:
        result: The subset to validate.
        metrics: Per-pair metrics of *all* pairs in the subset's group
            (the same population that was clustered).
        metric_names: PairMetrics attributes to validate.
    """
    by_name: Dict[str, PairMetrics] = {m.pair_name: m for m in metrics}
    missing = [name for name in result.pair_names if name not in by_name]
    if missing:
        raise AnalysisError(
            "metrics missing for clustered pairs: %s" % ", ".join(missing[:3])
        )
    labels = result.clustering.labels(result.n_clusters)
    # Map each selected representative to its cluster weight.
    representative_weight: Dict[str, float] = {}
    n = len(result.pair_names)
    for cluster in range(result.n_clusters):
        members = [
            result.pair_names[i] for i in range(n) if labels[i] == cluster
        ]
        champions = [name for name in members if name in result.selected]
        if len(champions) != 1:
            raise AnalysisError(
                "cluster %d has %d selected representatives"
                % (cluster, len(champions))
            )
        representative_weight[champions[0]] = len(members) / n

    validations: List[MetricValidation] = []
    for metric in metric_names:
        try:
            full_values = [getattr(by_name[name], metric)
                           for name in result.pair_names]
        except AttributeError:
            raise AnalysisError("unknown metric %r" % metric) from None
        full_mean = float(np.mean(full_values))
        estimate = float(sum(
            weight * getattr(by_name[name], metric)
            for name, weight in representative_weight.items()
        ))
        validations.append(MetricValidation(metric, full_mean, estimate))
    return SubsetValidation(
        group=result.group,
        n_clusters=result.n_clusters,
        results=tuple(validations),
    )
