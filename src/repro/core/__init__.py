"""The paper's primary contribution: the characterization methodology.

Per-pair characterization (:mod:`characterize`), mini-suite aggregation
(Table II, :mod:`aggregate`), CPU2017-vs-CPU2006 comparison (Tables III-VII,
:mod:`compare`), the 20 microarchitecture-independent characteristics of
Table VIII (:mod:`features`), and the redundancy/subsetting study of
Section V (:mod:`subset`).
"""

from .metrics import PairMetrics
from .characterize import Characterizer
from .aggregate import SuiteSizeSummary, summarize_by_suite_and_size
from .compare import ComparisonRow, SuiteComparison, compare_suites
from .features import FEATURE_NAMES, feature_matrix, feature_vector
from .cost import CostLine, CostProjection, project_costs
from .sizes import SizeSimilarity, input_size_similarity, summarize_size_similarity
from .subset import SubsetResult, SubsetSelector, SweepPoint
from .validate import MetricValidation, SubsetValidation, validate_subset

__all__ = [
    "Characterizer",
    "ComparisonRow",
    "CostLine",
    "CostProjection",
    "FEATURE_NAMES",
    "project_costs",
    "MetricValidation",
    "PairMetrics",
    "SizeSimilarity",
    "SubsetValidation",
    "input_size_similarity",
    "summarize_size_similarity",
    "validate_subset",
    "SubsetResult",
    "SubsetSelector",
    "SuiteComparison",
    "SuiteSizeSummary",
    "SweepPoint",
    "compare_suites",
    "feature_matrix",
    "feature_vector",
    "summarize_by_suite_and_size",
]
