"""Simulation-cost projection (the paper's motivation, quantified).

The paper motivates subsetting with simulator cost: native runs take ~11
hours, and "microarchitecture research usually employs simulators, like
GEM5, which are typically significantly slower" — commonly cited as a
10,000x-plus slowdown for detailed out-of-order models.  This module
projects detailed-simulation cost for the full suite, for the suggested
subset, and for the subset combined with phase-based simulation points,
making the methodology's payoff concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import AnalysisError
from .subset import SubsetResult

#: Detailed out-of-order simulator slowdown vs native (gem5-class).
DEFAULT_SLOWDOWN = 10_000.0

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class CostLine:
    """One strategy's projected simulation cost."""

    strategy: str
    native_seconds: float
    simulated_seconds: float

    @property
    def simulated_hours(self) -> float:
        return self.simulated_seconds / SECONDS_PER_HOUR

    @property
    def simulated_days(self) -> float:
        return self.simulated_hours / 24.0


@dataclass(frozen=True)
class CostProjection:
    """Projected costs for a set of strategies, cheapest last."""

    slowdown: float
    lines: List[CostLine]

    def line(self, strategy: str) -> CostLine:
        for entry in self.lines:
            if entry.strategy == strategy:
                return entry
        raise AnalysisError("no cost line %r" % strategy)

    def speedup(self, strategy: str, baseline: str = "full suite") -> float:
        base = self.line(baseline).simulated_seconds
        other = self.line(strategy).simulated_seconds
        if other <= 0:
            raise AnalysisError("strategy %r has zero cost" % strategy)
        return base / other


def project_costs(
    subsets: Sequence[SubsetResult],
    slowdown: float = DEFAULT_SLOWDOWN,
    phase_fraction: Optional[float] = None,
) -> CostProjection:
    """Project detailed-simulation costs.

    Args:
        subsets: Subset results whose groups to combine (e.g. rate+speed).
        slowdown: Simulator slowdown factor vs native execution.
        phase_fraction: If given, the fraction of each representative's
            run that phase-based simulation points retain (e.g. 0.07 from
            the phase-analysis example); adds a third strategy line.
    """
    if not subsets:
        raise AnalysisError("need at least one subset result")
    if slowdown <= 0:
        raise AnalysisError("slowdown must be positive")
    if phase_fraction is not None and not 0.0 < phase_fraction <= 1.0:
        raise AnalysisError("phase_fraction must be in (0, 1]")

    full_native = sum(result.full_time_seconds for result in subsets)
    subset_native = sum(result.subset_time_seconds for result in subsets)

    lines = [
        CostLine("full suite", full_native, full_native * slowdown),
        CostLine("suggested subset", subset_native, subset_native * slowdown),
    ]
    if phase_fraction is not None:
        phased = subset_native * phase_fraction
        lines.append(
            CostLine("subset + simulation points", phased, phased * slowdown)
        )
    return CostProjection(slowdown=slowdown, lines=lines)
