"""Redundancy analysis and representative subsetting (paper Section V).

Methodology, exactly as the paper lays it out:

1. characterize all 194 application-input pairs on the 20
   microarchitecture-independent characteristics of Table VIII;
2. PCA the [194 x 20] matrix and keep the first ``n_components`` PCs;
3. agglomeratively cluster the ref-input pairs of the rate and speed
   suites (separately) on their PC coordinates;
4. sweep the cluster count k: clustering quality is the SSE around
   cluster centroids, subset cost is the summed execution time after
   keeping only the fastest pair of each cluster;
5. pick the Pareto-optimal knee of (SSE, time) and emit the subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple  # noqa: F401

import numpy as np

from ..errors import AnalysisError
from ..stats.cluster import AgglomerativeClustering, ClusteringResult, sse
from ..stats.dendrogram import Dendrogram
from ..stats.pareto import ParetoPoint, knee_point
from ..stats.pca import PCA, PCAResult
from ..workloads.profile import InputSize, MiniSuite
from ..workloads.suite import BenchmarkSuite
from .characterize import Characterizer
from .features import FEATURE_NAMES, feature_matrix
from .metrics import PairMetrics

#: Mini-suites belonging to each clustering group.
GROUPS: Dict[str, Tuple[MiniSuite, ...]] = {
    "rate": (MiniSuite.RATE_INT, MiniSuite.RATE_FP),
    "speed": (MiniSuite.SPEED_INT, MiniSuite.SPEED_FP),
}


@dataclass(frozen=True)
class SweepPoint:
    """Quality/cost of one candidate cluster count."""

    n_clusters: int
    sse: float
    subset_time_seconds: float


@dataclass(frozen=True)
class SubsetResult:
    """The suggested subset for one group (rate or speed)."""

    group: str
    n_clusters: int
    selected: Tuple[str, ...]            # pair names, SPEC-number order
    subset_time_seconds: float
    full_time_seconds: float
    sweep: Tuple[SweepPoint, ...]
    clustering: ClusteringResult
    pair_names: Tuple[str, ...]          # all clustered pairs, row order

    @property
    def saving_pct(self) -> float:
        """Execution-time saving vs running the full group (Table X)."""
        return 100.0 * (1.0 - self.subset_time_seconds / self.full_time_seconds)

    def dendrogram(self) -> Dendrogram:
        return Dendrogram.from_result(self.clustering, self.pair_names)


class SubsetSelector:
    """Runs the Section-V pipeline end to end.

    Args:
        characterizer: Shared characterizer (so the 194-pair pass is reused).
        n_components: Retained principal components (paper: 4).
        linkage: Agglomeration rule for the hierarchical clustering.
    """

    def __init__(
        self,
        characterizer: Optional[Characterizer] = None,
        n_components: int = 4,
        linkage: str = "average",
    ):
        if n_components <= 0:
            raise AnalysisError("n_components must be positive")
        self.characterizer = characterizer or Characterizer()
        self.n_components = n_components
        self.linkage = linkage
        self._pca_cache: Dict[int, Tuple[PCAResult, List[str], PCA]] = {}

    # ------------------------------------------------------------------
    # PCA over all 194 pairs
    # ------------------------------------------------------------------
    def pca(self, suite: BenchmarkSuite) -> Tuple[PCAResult, List[str]]:
        """PCA of the full [all-pairs x 20] characteristics matrix."""
        key = id(suite)
        if key not in self._pca_cache:
            reports = [
                self.characterizer.report(pair.profile)
                for pair in suite.pairs(size=None)
            ]
            matrix, labels = feature_matrix(reports)
            pca = PCA(n_components=self.n_components)
            result = pca.fit_transform(matrix)
            self._pca_cache[key] = (result, labels, pca)
        result, labels, _ = self._pca_cache[key]
        return result, labels

    def pca_model(self, suite: BenchmarkSuite) -> PCA:
        """The fitted PCA model, for projecting external workloads into
        the suite's PC space (see examples/custom_workload.py)."""
        self.pca(suite)
        _, _, model = self._pca_cache[id(suite)]
        return model

    def variance_captured(self, suite: BenchmarkSuite) -> float:
        """Cumulative variance ratio of the retained PCs (paper: 76.321%)."""
        result, _ = self.pca(suite)
        return float(result.cumulative_variance_ratio()[-1])

    # ------------------------------------------------------------------
    # Group clustering and subsetting
    # ------------------------------------------------------------------
    def _group_metrics(
        self, suite: BenchmarkSuite, group: str
    ) -> List[PairMetrics]:
        try:
            suites = GROUPS[group]
        except KeyError:
            raise AnalysisError(
                "unknown group %r (valid: %s)" % (group, ", ".join(sorted(GROUPS)))
            ) from None
        metrics: List[PairMetrics] = []
        for mini in suites:
            metrics.extend(
                self.characterizer.characterize(
                    suite, size=InputSize.REF, mini_suite=mini
                )
            )
        metrics.sort(key=lambda m: m.pair_name)
        return metrics

    def group_scores(
        self, suite: BenchmarkSuite, group: str
    ) -> Tuple[np.ndarray, List[PairMetrics]]:
        """PC coordinates (ref pairs only) of one group."""
        result, labels = self.pca(suite)
        index = {label: i for i, label in enumerate(labels)}
        metrics = self._group_metrics(suite, group)
        rows = [index[m.pair_name] for m in metrics]
        return result.scores[rows], metrics

    def cluster(self, suite: BenchmarkSuite, group: str) -> ClusteringResult:
        """Hierarchical clustering of one group's ref pairs (Fig. 9)."""
        scores, _ = self.group_scores(suite, group)
        return AgglomerativeClustering(linkage=self.linkage).fit(scores)

    def sweep(self, suite: BenchmarkSuite, group: str) -> List[SweepPoint]:
        """SSE and subset time for every candidate cluster count (Fig. 10)."""
        scores, metrics = self.group_scores(suite, group)
        clustering = AgglomerativeClustering(linkage=self.linkage).fit(scores)
        times = np.asarray([m.time_seconds for m in metrics])
        points: List[SweepPoint] = []
        for k in range(1, len(metrics) + 1):
            labels = clustering.labels(k)
            subset_time = sum(
                float(times[labels == label].min()) for label in range(k)
            )
            points.append(
                SweepPoint(
                    n_clusters=k,
                    sse=sse(scores, labels),
                    subset_time_seconds=subset_time,
                )
            )
        return points

    @staticmethod
    def choose_clusters(
        sweep: Sequence[SweepPoint],
        method: str = "sse_threshold",
        sse_threshold: float = 0.02,
    ) -> int:
        """Pick the Pareto-optimal cluster count from a sweep.

        The paper picks "the Pareto-optimal solution for the SSE and
        execution time" without pinning down the rule; two readings are
        implemented:

        * ``"sse_threshold"`` (default) — the smallest k whose clustering
          retains at least ``1 - sse_threshold`` of the SSE reduction
          relative to a single cluster (the elbow rule).  This is the most
          time-saving point whose clusters are still tight.
        * ``"knee"`` — the point of the (SSE, time) Pareto front closest to
          the normalized ideal corner.
        """
        if method == "knee":
            knee = knee_point(
                [
                    ParetoPoint(key=p.n_clusters, x=p.sse, y=p.subset_time_seconds)
                    for p in sweep
                ]
            )
            return knee.key
        if method == "sse_threshold":
            if not 0.0 < sse_threshold < 1.0:
                raise AnalysisError("sse_threshold must be in (0, 1)")
            total = max(p.sse for p in sweep)
            if total <= 0:
                return 1
            for point in sorted(sweep, key=lambda p: p.n_clusters):
                if point.sse <= sse_threshold * total:
                    return point.n_clusters
            return max(p.n_clusters for p in sweep)
        raise AnalysisError(
            "unknown selection method %r (valid: sse_threshold, knee)" % method
        )

    def select(
        self,
        suite: BenchmarkSuite,
        group: str,
        n_clusters: Optional[int] = None,
        method: str = "sse_threshold",
    ) -> SubsetResult:
        """Produce the suggested subset for one group (Table X).

        Args:
            n_clusters: Fix the cluster count; None applies ``method``.
            method: Cluster-count rule (see :meth:`choose_clusters`).
        """
        scores, metrics = self.group_scores(suite, group)
        clustering = AgglomerativeClustering(linkage=self.linkage).fit(scores)
        times = np.asarray([m.time_seconds for m in metrics])
        sweep = self.sweep(suite, group)
        if n_clusters is None:
            n_clusters = self.choose_clusters(sweep, method=method)
        labels = clustering.labels(n_clusters)
        selected: List[str] = []
        subset_time = 0.0
        for label in range(n_clusters):
            members = np.flatnonzero(labels == label)
            champion = members[int(np.argmin(times[members]))]
            selected.append(metrics[champion].pair_name)
            subset_time += float(times[champion])
        selected.sort()
        return SubsetResult(
            group=group,
            n_clusters=n_clusters,
            selected=tuple(selected),
            subset_time_seconds=subset_time,
            full_time_seconds=float(times.sum()),
            sweep=tuple(sweep),
            clustering=clustering,
            pair_names=tuple(m.pair_name for m in metrics),
        )
