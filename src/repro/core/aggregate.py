"""Mini-suite x input-size aggregation (paper Table II)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import AnalysisError
from ..workloads.profile import InputSize, MiniSuite
from .metrics import PairMetrics

#: Mini-suite display order of Table II.
TABLE2_SUITES: Tuple[MiniSuite, ...] = (
    MiniSuite.RATE_INT,
    MiniSuite.RATE_FP,
    MiniSuite.SPEED_INT,
    MiniSuite.SPEED_FP,
)


@dataclass(frozen=True)
class SuiteSizeSummary:
    """Average execution characteristics of one (mini-suite, size) cell."""

    suite: MiniSuite
    input_size: InputSize
    n_applications: int
    instructions_e9: float
    ipc: float
    time_seconds: float


def _application_means(metrics: Sequence[PairMetrics]) -> List[PairMetrics]:
    """Group pairs by application and average multi-input applications,
    matching the paper's 'average values across all the inputs'."""
    grouped: Dict[str, List[PairMetrics]] = {}
    for metric in metrics:
        grouped.setdefault(metric.benchmark, []).append(metric)
    means = []
    for name in sorted(grouped):
        group = grouped[name]
        n = len(group)
        means.append(
            (
                name,
                sum(m.instructions_e9 for m in group) / n,
                sum(m.ipc for m in group) / n,
                sum(m.time_seconds for m in group) / n,
            )
        )
    return means


def summarize_by_suite_and_size(
    metrics: Sequence[PairMetrics],
) -> List[SuiteSizeSummary]:
    """Build Table II: per mini-suite, per input size averages.

    ``metrics`` must cover all sizes (characterize with ``size=None``).
    """
    if not metrics:
        raise AnalysisError("no metrics to summarize")
    cells: Dict[Tuple[MiniSuite, InputSize], List[PairMetrics]] = {}
    for metric in metrics:
        cells.setdefault((metric.suite, metric.input_size), []).append(metric)

    summaries: List[SuiteSizeSummary] = []
    for suite in TABLE2_SUITES:
        for size in (InputSize.TEST, InputSize.TRAIN, InputSize.REF):
            group = cells.get((suite, size))
            if not group:
                continue
            apps = _application_means(group)
            n = len(apps)
            summaries.append(
                SuiteSizeSummary(
                    suite=suite,
                    input_size=size,
                    n_applications=n,
                    instructions_e9=sum(a[1] for a in apps) / n,
                    ipc=sum(a[2] for a in apps) / n,
                    time_seconds=sum(a[3] for a in apps) / n,
                )
            )
    return summaries
