"""CPU2017 vs CPU2006 suite comparison (paper Tables III-VII).

Each comparison metric is summarized as mean and (sample) standard
deviation over applications, split into int / fp / all — the exact shape of
the paper's comparison tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import AnalysisError
from .metrics import PairMetrics

#: Metric extractors available to the comparison, in paper units.
COMPARISON_METRICS: Dict[str, Callable[[PairMetrics], float]] = {
    "ipc": lambda m: m.ipc,
    "load_pct": lambda m: m.load_pct,
    "store_pct": lambda m: m.store_pct,
    "branch_pct": lambda m: m.branch_pct,
    "l1_miss_pct": lambda m: m.l1_miss_pct,
    "l2_miss_pct": lambda m: m.l2_miss_pct,
    "l3_miss_pct": lambda m: m.l3_miss_pct,
    "mispredict_pct": lambda m: m.mispredict_pct,
    "rss_gib": lambda m: m.rss_gib,
    "vsz_gib": lambda m: m.vsz_gib,
}


@dataclass(frozen=True)
class ComparisonRow:
    """Mean/std of one metric over one population of applications."""

    label: str
    n: int
    mean: float
    std: float


@dataclass(frozen=True)
class SuiteComparison:
    """One metric compared across both suites, split int/fp/all."""

    metric: str
    rows: Tuple[ComparisonRow, ...]

    def row(self, label: str) -> ComparisonRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise AnalysisError("no comparison row %r" % label)

    def delta(self, population: str = "all") -> float:
        """CPU17 mean minus CPU06 mean for one population."""
        return (
            self.row("CPU17 %s" % population).mean
            - self.row("CPU06 %s" % population).mean
        )

    def ratio(self, population: str = "all") -> float:
        """CPU17 mean over CPU06 mean for one population."""
        base = self.row("CPU06 %s" % population).mean
        if base == 0:
            raise AnalysisError("CPU06 mean is zero; ratio undefined")
        return self.row("CPU17 %s" % population).mean / base


def _mean_std(values: Sequence[float]) -> Tuple[float, float]:
    n = len(values)
    if n == 0:
        raise AnalysisError("empty population")
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(variance)


def compare_suites(
    cpu17_metrics: Sequence[PairMetrics],
    cpu06_metrics: Sequence[PairMetrics],
    metric: str,
) -> SuiteComparison:
    """Build one of the paper's comparison tables for a metric.

    Both metric lists should be per-application (multi-input applications
    averaged first, as the paper does); use
    :meth:`~repro.core.characterize.Characterizer.benchmark_means`.
    """
    try:
        extract = COMPARISON_METRICS[metric]
    except KeyError:
        raise AnalysisError(
            "unknown comparison metric %r (valid: %s)"
            % (metric, ", ".join(sorted(COMPARISON_METRICS)))
        ) from None

    def split(metrics: Sequence[PairMetrics]) -> Dict[str, List[float]]:
        out: Dict[str, List[float]] = {"int": [], "fp": [], "all": []}
        for m in metrics:
            value = extract(m)
            out["int" if m.is_integer else "fp"].append(value)
            out["all"].append(value)
        return out

    populations17 = split(cpu17_metrics)
    populations06 = split(cpu06_metrics)
    rows: List[ComparisonRow] = []
    for population in ("int", "fp", "all"):
        for label, values in (
            ("CPU06 %s" % population, populations06[population]),
            ("CPU17 %s" % population, populations17[population]),
        ):
            mean, std = _mean_std(values)
            rows.append(ComparisonRow(label=label, n=len(values), mean=mean, std=std))
    return SuiteComparison(metric=metric, rows=tuple(rows))
