"""Per-pair derived metrics.

:class:`PairMetrics` is the analysis-facing view of one application-input
pair's counter report: everything the paper plots or tabulates, in the
paper's units (percentages as percents, footprints in bytes, time in
seconds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..perf.report import CounterReport
from ..workloads.profile import InputSize, MiniSuite, WorkloadProfile


@dataclass(frozen=True)
class PairMetrics:
    """Derived characterization metrics of one application-input pair."""

    pair_name: str
    benchmark: str
    input_name: str
    suite: MiniSuite
    input_size: InputSize
    instructions: float
    ipc: float
    time_seconds: float
    load_pct: float
    store_pct: float
    branch_pct: float
    branch_subtype_pct: Tuple[float, float, float, float, float]
    l1_miss_pct: float
    l2_miss_pct: float
    l3_miss_pct: float
    mispredict_pct: float
    rss_bytes: float
    vsz_bytes: float
    collection_error: bool

    @classmethod
    def from_report(cls, report: CounterReport) -> "PairMetrics":
        """Derive metrics from one counter report."""
        profile = report.profile
        m1, m2, m3 = report.miss_rates
        return cls(
            pair_name=profile.pair_name,
            benchmark=profile.benchmark,
            input_name=profile.input_name,
            suite=profile.suite,
            input_size=profile.input_size,
            instructions=report.instructions,
            ipc=report.ipc,
            time_seconds=report.wall_time_seconds,
            load_pct=report.load_pct,
            store_pct=report.store_pct,
            branch_pct=report.branch_pct,
            branch_subtype_pct=report.branch_subtype_pct(),
            l1_miss_pct=100.0 * m1,
            l2_miss_pct=100.0 * m2,
            l3_miss_pct=100.0 * m3,
            mispredict_pct=100.0 * report.mispredict_rate,
            rss_bytes=report.rss_bytes,
            vsz_bytes=report.vsz_bytes,
            collection_error=profile.collection_error,
        )

    @property
    def memory_pct(self) -> float:
        """Combined load+store micro-op percentage."""
        return self.load_pct + self.store_pct

    @property
    def instructions_e9(self) -> float:
        """Instruction count in billions (the paper's tabulated unit)."""
        return self.instructions / 1e9

    @property
    def rss_gib(self) -> float:
        return self.rss_bytes / 1024**3

    @property
    def vsz_gib(self) -> float:
        return self.vsz_bytes / 1024**3

    @property
    def is_integer(self) -> bool:
        return self.suite.is_integer

    @property
    def is_speed(self) -> bool:
        return self.suite.is_speed
