"""Suite characterization: run every pair, collect metrics.

A :class:`Characterizer` wraps a :class:`~repro.perf.session.PerfSession`
and memoizes per-pair reports, so the ten tables/figures that all consume
the same 194-pair characterization share a single simulation pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import CollectionError, SimulationError
from ..perf.report import CounterReport
from ..perf.session import DEFAULT_SAMPLE_OPS, PerfSession
from ..workloads.profile import InputSize, MiniSuite, WorkloadProfile
from ..workloads.suite import BenchmarkSuite
from .metrics import PairMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runner import SuiteRunner


class Characterizer:
    """Characterizes benchmark suites on one system configuration.

    Args:
        session: The perf session to collect with (default: Table-I config).
        strict_errors: Propagate the paper's five collection failures as
            :class:`~repro.errors.CollectionError` instead of collecting
            model counters for those pairs.
        runner: Optional :class:`~repro.runner.SuiteRunner`; bulk
            characterization then goes through its process pool and
            on-disk cache instead of the serial in-process session.
    """

    def __init__(
        self,
        session: Optional[PerfSession] = None,
        strict_errors: bool = False,
        runner: Optional["SuiteRunner"] = None,
    ):
        if session is None and runner is not None:
            session = runner.make_session()
        self.session = session or PerfSession(sample_ops=DEFAULT_SAMPLE_OPS)
        if runner is not None and (
            runner.config != self.session.config
            or runner.sample_ops != self.session.sample_ops
            or runner.warmup_fraction != self.session.warmup_fraction
        ):
            raise SimulationError(
                "runner and session disagree on collection parameters; "
                "their counters would be inconsistent"
            )
        self.runner = runner
        self.strict_errors = strict_errors
        self._reports: Dict[str, CounterReport] = {}
        self._failures: Dict[str, CollectionError] = {}

    @property
    def failures(self) -> Tuple[str, ...]:
        """Pair names whose collection failed (strict mode only)."""
        return tuple(sorted(self._failures))

    def report(self, profile: WorkloadProfile) -> CounterReport:
        """The (memoized) counter report of one pair."""
        key = profile.pair_name
        if key in self._failures:
            raise self._failures[key]
        if key not in self._reports:
            try:
                self._reports[key] = self.session.run(
                    profile, strict_errors=self.strict_errors
                )
            except CollectionError as error:
                self._failures[key] = error
                raise
        return self._reports[key]

    def metrics(self, profile: WorkloadProfile) -> PairMetrics:
        """The derived metrics of one pair."""
        return PairMetrics.from_report(self.report(profile))

    def characterize(
        self,
        suite: BenchmarkSuite,
        size: Optional[InputSize] = InputSize.REF,
        mini_suite: Optional[MiniSuite] = None,
        skip_failures: bool = True,
    ) -> List[PairMetrics]:
        """Characterize every pair of a suite.

        Args:
            suite: The benchmark registry to characterize.
            size: One input size, or None for all three.
            mini_suite: Restrict to one mini-suite.
            skip_failures: In strict mode, drop failing pairs (mirroring
                the paper) instead of raising.
        """
        pairs = suite.pairs(size=size, suite=mini_suite)
        if self.runner is not None:
            self._bulk_collect([pair.profile for pair in pairs])
        results: List[PairMetrics] = []
        for pair in pairs:
            try:
                results.append(self.metrics(pair.profile))
            except CollectionError:
                if not skip_failures:
                    raise
        return results

    def _bulk_collect(self, profiles: List[WorkloadProfile]) -> None:
        """Characterize not-yet-memoized profiles through the runner."""
        missing = [
            profile
            for profile in profiles
            if profile.pair_name not in self._reports
            and profile.pair_name not in self._failures
        ]
        if not missing:
            return
        run = self.runner.run(missing, strict_errors=self.strict_errors)
        self._reports.update(run.reports)
        hard = []
        for failure in run.failures:
            if failure.error_type == "CollectionError":
                self._failures[failure.pair_name] = CollectionError(
                    failure.pair_name, failure.message
                )
            else:
                hard.append(failure)
        if hard:
            # Anything other than a modeled collection failure means the
            # simulation itself broke; surface it instead of silently
            # dropping pairs from the characterization.
            raise SimulationError(
                "suite run failed for %d pair(s): %s"
                % (
                    len(hard),
                    "; ".join(
                        "%s (%s: %s)" % (f.pair_name, f.error_type, f.message)
                        for f in hard[:3]
                    ),
                )
            )

    def benchmark_means(
        self,
        suite: BenchmarkSuite,
        size: InputSize = InputSize.REF,
        mini_suite: Optional[MiniSuite] = None,
    ) -> List[PairMetrics]:
        """Per-application metrics with multi-input pairs averaged.

        The paper reports per-application numbers as the average of
        hardware counters "across all the inputs"; this helper produces
        that view (one :class:`PairMetrics` per application, with
        ``input_name`` cleared on averaged entries).
        """
        grouped: Dict[str, List[PairMetrics]] = {}
        for metric in self.characterize(suite, size=size, mini_suite=mini_suite):
            grouped.setdefault(metric.benchmark, []).append(metric)

        def average(group: List[PairMetrics]) -> PairMetrics:
            if len(group) == 1:
                return group[0]
            n = len(group)

            def mean(attr: str) -> float:
                return sum(getattr(m, attr) for m in group) / n

            subtype = tuple(
                sum(m.branch_subtype_pct[i] for m in group) / n for i in range(5)
            )
            first = group[0]
            return PairMetrics(
                pair_name="%s/%s" % (first.benchmark, first.input_size.value),
                benchmark=first.benchmark,
                input_name="",
                suite=first.suite,
                input_size=first.input_size,
                instructions=mean("instructions"),
                ipc=mean("ipc"),
                time_seconds=mean("time_seconds"),
                load_pct=mean("load_pct"),
                store_pct=mean("store_pct"),
                branch_pct=mean("branch_pct"),
                branch_subtype_pct=subtype,
                l1_miss_pct=mean("l1_miss_pct"),
                l2_miss_pct=mean("l2_miss_pct"),
                l3_miss_pct=mean("l3_miss_pct"),
                mispredict_pct=mean("mispredict_pct"),
                rss_bytes=mean("rss_bytes"),
                vsz_bytes=mean("vsz_bytes"),
                collection_error=any(m.collection_error for m in group),
            )

        ordered = sorted(grouped)
        return [average(grouped[name]) for name in ordered]
