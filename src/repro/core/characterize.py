"""Suite characterization: run every pair, collect metrics.

A :class:`Characterizer` wraps a :class:`~repro.perf.session.PerfSession`
and memoizes per-pair reports, so the ten tables/figures that all consume
the same 194-pair characterization share a single simulation pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import CollectionError
from ..perf.report import CounterReport
from ..perf.session import DEFAULT_SAMPLE_OPS, PerfSession
from ..workloads.profile import InputSize, MiniSuite, WorkloadProfile
from ..workloads.suite import BenchmarkSuite
from .metrics import PairMetrics


class Characterizer:
    """Characterizes benchmark suites on one system configuration.

    Args:
        session: The perf session to collect with (default: Table-I config).
        strict_errors: Propagate the paper's five collection failures as
            :class:`~repro.errors.CollectionError` instead of collecting
            model counters for those pairs.
    """

    def __init__(
        self,
        session: Optional[PerfSession] = None,
        strict_errors: bool = False,
    ):
        self.session = session or PerfSession(sample_ops=DEFAULT_SAMPLE_OPS)
        self.strict_errors = strict_errors
        self._reports: Dict[str, CounterReport] = {}
        self._failures: Dict[str, CollectionError] = {}

    @property
    def failures(self) -> Tuple[str, ...]:
        """Pair names whose collection failed (strict mode only)."""
        return tuple(sorted(self._failures))

    def report(self, profile: WorkloadProfile) -> CounterReport:
        """The (memoized) counter report of one pair."""
        key = profile.pair_name
        if key in self._failures:
            raise self._failures[key]
        if key not in self._reports:
            try:
                self._reports[key] = self.session.run(
                    profile, strict_errors=self.strict_errors
                )
            except CollectionError as error:
                self._failures[key] = error
                raise
        return self._reports[key]

    def metrics(self, profile: WorkloadProfile) -> PairMetrics:
        """The derived metrics of one pair."""
        return PairMetrics.from_report(self.report(profile))

    def characterize(
        self,
        suite: BenchmarkSuite,
        size: Optional[InputSize] = InputSize.REF,
        mini_suite: Optional[MiniSuite] = None,
        skip_failures: bool = True,
    ) -> List[PairMetrics]:
        """Characterize every pair of a suite.

        Args:
            suite: The benchmark registry to characterize.
            size: One input size, or None for all three.
            mini_suite: Restrict to one mini-suite.
            skip_failures: In strict mode, drop failing pairs (mirroring
                the paper) instead of raising.
        """
        results: List[PairMetrics] = []
        for pair in suite.pairs(size=size, suite=mini_suite):
            try:
                results.append(self.metrics(pair.profile))
            except CollectionError:
                if not skip_failures:
                    raise
        return results

    def benchmark_means(
        self,
        suite: BenchmarkSuite,
        size: InputSize = InputSize.REF,
        mini_suite: Optional[MiniSuite] = None,
    ) -> List[PairMetrics]:
        """Per-application metrics with multi-input pairs averaged.

        The paper reports per-application numbers as the average of
        hardware counters "across all the inputs"; this helper produces
        that view (one :class:`PairMetrics` per application, with
        ``input_name`` cleared on averaged entries).
        """
        grouped: Dict[str, List[PairMetrics]] = {}
        for metric in self.characterize(suite, size=size, mini_suite=mini_suite):
            grouped.setdefault(metric.benchmark, []).append(metric)

        def average(group: List[PairMetrics]) -> PairMetrics:
            if len(group) == 1:
                return group[0]
            n = len(group)

            def mean(attr: str) -> float:
                return sum(getattr(m, attr) for m in group) / n

            subtype = tuple(
                sum(m.branch_subtype_pct[i] for m in group) / n for i in range(5)
            )
            first = group[0]
            return PairMetrics(
                pair_name="%s/%s" % (first.benchmark, first.input_size.value),
                benchmark=first.benchmark,
                input_name="",
                suite=first.suite,
                input_size=first.input_size,
                instructions=mean("instructions"),
                ipc=mean("ipc"),
                time_seconds=mean("time_seconds"),
                load_pct=mean("load_pct"),
                store_pct=mean("store_pct"),
                branch_pct=mean("branch_pct"),
                branch_subtype_pct=subtype,
                l1_miss_pct=mean("l1_miss_pct"),
                l2_miss_pct=mean("l2_miss_pct"),
                l3_miss_pct=mean("l3_miss_pct"),
                mispredict_pct=mean("mispredict_pct"),
                rss_bytes=mean("rss_bytes"),
                vsz_bytes=mean("vsz_bytes"),
                collection_error=any(m.collection_error for m in group),
            )

        ordered = sorted(grouped)
        return [average(grouped[name]) for name in ordered]
