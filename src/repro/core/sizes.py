"""Input-size representativeness analysis (extension beyond the paper).

The paper notes that "the choice of application-input pairs is often
arbitrary" and characterizes test/train/ref separately (Table II), but
never quantifies whether a *smaller input* can stand in for ref.  This
module does: it places each application's per-size characterization in the
suite's PC space and measures how far the test and train positions sit
from the ref position.  Applications with small distances can be studied
on cheap inputs; large distances flag inputs that would mislead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import AnalysisError
from ..workloads.profile import InputSize
from ..workloads.suite import BenchmarkSuite
from .subset import SubsetSelector


@dataclass(frozen=True)
class SizeSimilarity:
    """Distances of one application's smaller inputs from its ref position
    in the suite's PC space (application-mean positions per size)."""

    benchmark: str
    test_distance: float
    train_distance: float

    @property
    def train_is_closer(self) -> bool:
        return self.train_distance <= self.test_distance


def input_size_similarity(
    selector: SubsetSelector, suite: BenchmarkSuite
) -> List[SizeSimilarity]:
    """Measure per-application test->ref and train->ref PC distances.

    The PCA is the one fitted on all pairs (all sizes), so positions are
    comparable across sizes.
    """
    result, labels = selector.pca(suite)
    index = {label: i for i, label in enumerate(labels)}

    positions: Dict[str, Dict[InputSize, np.ndarray]] = {}
    for pair in suite.pairs():
        profile = pair.profile
        row = index[profile.pair_name]
        app = positions.setdefault(profile.benchmark, {})
        app.setdefault(profile.input_size, []).append(result.scores[row])

    similarities: List[SizeSimilarity] = []
    for benchmark in sorted(positions):
        sizes = positions[benchmark]
        if any(size not in sizes for size in InputSize):
            raise AnalysisError(
                "%s is missing an input size" % benchmark
            )
        means = {
            size: np.mean(np.asarray(sizes[size]), axis=0)
            for size in InputSize
        }
        ref = means[InputSize.REF]
        similarities.append(
            SizeSimilarity(
                benchmark=benchmark,
                test_distance=float(np.linalg.norm(means[InputSize.TEST] - ref)),
                train_distance=float(np.linalg.norm(means[InputSize.TRAIN] - ref)),
            )
        )
    return similarities


def summarize_size_similarity(
    similarities: List[SizeSimilarity],
) -> Dict[str, float]:
    """Suite-level view: mean distances and the train-closer share."""
    if not similarities:
        raise AnalysisError("no similarities to summarize")
    return {
        "mean_test_distance": float(
            np.mean([s.test_distance for s in similarities])
        ),
        "mean_train_distance": float(
            np.mean([s.train_distance for s in similarities])
        ),
        "train_closer_fraction": float(
            np.mean([s.train_is_closer for s in similarities])
        ),
    }
