"""Exception hierarchy for the repro package.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch a single base class at API
boundaries while still distinguishing failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid system or cache configuration was supplied."""


class WorkloadError(ReproError):
    """A workload profile is malformed or internally inconsistent."""


class UnknownBenchmarkError(WorkloadError):
    """A benchmark, input, or suite name does not exist in the registry
    (or matches more than one entry)."""

    def __init__(self, name: str, candidates: tuple = (), reason: str = ""):
        self.name = name
        self.candidates = tuple(candidates)
        self.reason = reason or "unknown benchmark or input"
        hint = ""
        if self.candidates:
            hint = " (did you mean: %s?)" % ", ".join(self.candidates)
        super().__init__("%s: %r%s" % (self.reason, name, hint))

    def __reduce__(self):
        # Exception.__reduce__ would replay only the formatted message,
        # which breaks unpickling across process-pool boundaries.
        return (type(self), (self.name, self.candidates, self.reason))


class SimulationError(ReproError):
    """The microarchitecture simulation was driven with invalid inputs."""


class CounterError(ReproError):
    """An unknown or unreadable performance counter was requested."""


class CollectionError(ReproError):
    """Counter collection failed for an application-input pair.

    Mirrors the perf failures the paper reports for 627.cam4_s (all input
    sizes) and the ``test.pl`` test input of 500/600.perlbench.
    """

    def __init__(self, pair_name: str, reason: str):
        self.pair_name = pair_name
        self.reason = reason
        super().__init__("counter collection failed for %s: %s" % (pair_name, reason))

    def __reduce__(self):
        # Keep the two-argument constructor signature picklable so the
        # error survives a round trip through a worker process.
        return (type(self), (self.pair_name, self.reason))


class CounterValidationError(CounterError):
    """A counter report violates the layer's consistency invariants
    (per-level hit+miss vs. loads, branch subtype sums, rate bounds,
    RSS vs. VSZ) and must not feed downstream analysis.
    """

    def __init__(self, pair_name: str, violations: tuple = ()):
        self.pair_name = pair_name
        self.violations = tuple(violations)
        super().__init__(
            "inconsistent counter report for %s: %s"
            % (pair_name, "; ".join(self.violations) or "unspecified violation")
        )

    def __reduce__(self):
        # Keep the two-argument constructor signature picklable so the
        # error survives a round trip through a worker process.
        return (type(self), (self.pair_name, self.violations))


class LintError(ReproError):
    """The static-analysis pass was misconfigured (bad rule id, unknown
    path, unknown output format)."""


class AnalysisError(ReproError):
    """A statistical analysis was invoked on unusable data."""


class ClusteringError(AnalysisError):
    """Hierarchical clustering was asked for an impossible configuration."""


class ExperimentError(ReproError):
    """An experiment id is unknown or its reproduction failed."""
