"""repro — a reproduction of "A Workload Characterization of the SPEC
CPU2017 Benchmark Suite" (Limaye & Adegbija, ISPASS 2018).

The package models the paper's full pipeline: statistical workload models
of all 194 SPEC CPU2017 application-input pairs (plus SPEC CPU2006), a
Haswell-like microarchitecture substrate, a perf-style counter layer, the
characterization and suite-comparison analyses, and the PCA + hierarchical
clustering redundancy study with Pareto-optimal subsetting.

Quickstart::

    from repro.api import InputSize, PerfSession, cpu2017

    suite = cpu2017()
    session = PerfSession()
    report = session.run(suite.get("505.mcf_r").profile(InputSize.REF))
    print(report.ipc, report.miss_rates)

:mod:`repro.api` is the stable facade; prefer it for all downstream code.
The top-level ``repro`` namespace keeps its historical exports and lazily
resolves any other ``repro.api`` name with a :class:`DeprecationWarning`.
"""

from .config import (
    CacheConfig,
    PipelineConfig,
    SystemConfig,
    get_config,
    haswell_e5_2650l_v3,
)
from .errors import (
    AnalysisError,
    ClusteringError,
    CollectionError,
    ConfigError,
    CounterError,
    CounterValidationError,
    ExperimentError,
    LintError,
    ReproError,
    SimulationError,
    UnknownBenchmarkError,
    WorkloadError,
)
from .perf import CounterReport, PerfSession
from .runner import (
    PairFailure,
    ResultCache,
    RunManifest,
    SuiteRunner,
    SuiteRunResult,
)
from .workloads import (
    BenchmarkSuite,
    InputSize,
    MiniSuite,
    WorkloadProfile,
    cpu2006,
    cpu2017,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "BenchmarkSuite",
    "CacheConfig",
    "ClusteringError",
    "CollectionError",
    "ConfigError",
    "CounterError",
    "CounterReport",
    "CounterValidationError",
    "ExperimentError",
    "LintError",
    "InputSize",
    "MiniSuite",
    "PairFailure",
    "PerfSession",
    "PipelineConfig",
    "ReproError",
    "ResultCache",
    "RunManifest",
    "SimulationError",
    "SuiteRunResult",
    "SuiteRunner",
    "SystemConfig",
    "UnknownBenchmarkError",
    "WorkloadError",
    "WorkloadProfile",
    "__version__",
    "cpu2006",
    "cpu2017",
    "get_config",
    "haswell_e5_2650l_v3",
]


def __getattr__(name: str):
    """Lazily serve ``repro.api`` names not in ``repro.__all__``.

    ``repro.Characterizer`` and friends keep working, but with a
    :class:`DeprecationWarning` steering callers to the stable facade.
    Lazy resolution (PEP 562) also keeps heavy analysis modules out of
    the base ``import repro`` cost.
    """
    import importlib
    import warnings

    # import_module, not ``from . import api``: the from-import form asks
    # the package for its ``api`` attribute, which re-enters this very
    # __getattr__ before the submodule is bound.
    _api = importlib.import_module(".api", __name__)
    if name == "api":
        return _api
    if name in _api.__all__:
        warnings.warn(
            "accessing repro.%s via the top-level package is deprecated; "
            "import it from repro.api instead" % name,
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_api, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
