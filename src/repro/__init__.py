"""repro — a reproduction of "A Workload Characterization of the SPEC
CPU2017 Benchmark Suite" (Limaye & Adegbija, ISPASS 2018).

The package models the paper's full pipeline: statistical workload models
of all 194 SPEC CPU2017 application-input pairs (plus SPEC CPU2006), a
Haswell-like microarchitecture substrate, a perf-style counter layer, the
characterization and suite-comparison analyses, and the PCA + hierarchical
clustering redundancy study with Pareto-optimal subsetting.

Quickstart::

    import repro

    suite = repro.cpu2017()
    session = repro.PerfSession()
    report = session.run(suite.get("505.mcf_r").profile(repro.InputSize.REF))
    print(report.ipc, report.miss_rates)
"""

from .config import (
    CacheConfig,
    PipelineConfig,
    SystemConfig,
    get_config,
    haswell_e5_2650l_v3,
)
from .errors import (
    AnalysisError,
    ClusteringError,
    CollectionError,
    ConfigError,
    CounterError,
    CounterValidationError,
    ExperimentError,
    LintError,
    ReproError,
    SimulationError,
    UnknownBenchmarkError,
    WorkloadError,
)
from .perf import CounterReport, PerfSession
from .runner import (
    PairFailure,
    ResultCache,
    RunManifest,
    SuiteRunner,
    SuiteRunResult,
)
from .workloads import (
    BenchmarkSuite,
    InputSize,
    MiniSuite,
    WorkloadProfile,
    cpu2006,
    cpu2017,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "BenchmarkSuite",
    "CacheConfig",
    "ClusteringError",
    "CollectionError",
    "ConfigError",
    "CounterError",
    "CounterReport",
    "CounterValidationError",
    "ExperimentError",
    "LintError",
    "InputSize",
    "MiniSuite",
    "PairFailure",
    "PerfSession",
    "PipelineConfig",
    "ReproError",
    "ResultCache",
    "RunManifest",
    "SimulationError",
    "SuiteRunResult",
    "SuiteRunner",
    "SystemConfig",
    "UnknownBenchmarkError",
    "WorkloadError",
    "WorkloadProfile",
    "__version__",
    "cpu2006",
    "cpu2017",
    "get_config",
    "haswell_e5_2650l_v3",
]
