"""Stable public facade of the ``repro`` package.

Everything downstream code needs lives here under one import::

    from repro.api import SuiteRunner, cpu2017, InputSize

``repro.api`` re-exports from the implementation modules but adds no logic
of its own; its :data:`__all__` is the compatibility contract.  Names may
be *added* here over time, but an existing name never changes meaning or
disappears without a deprecation cycle.  Deep imports
(``repro.uarch.core``, ``repro.workloads.generator``, ...) still work but
are implementation detail: they may move between releases, and the
``API001`` lint rule keeps the shipped examples and docs off them.

The facade groups into:

- **Suites and workloads** — :func:`cpu2017`, :func:`cpu2006`,
  :class:`WorkloadProfile` and its mix/behavior components.
- **Collection** — :class:`PerfSession`, :class:`SuiteRunner`,
  :class:`ResultCache`, :class:`CounterReport`.
- **Simulation** — :class:`SimulatedCore`, :class:`TraceGenerator`,
  :func:`solve_pipeline_params`, configs and presets.
- **Analysis** — :class:`Characterizer`, :class:`SubsetSelector`,
  :func:`feature_vector`, the phase-analysis toolkit.
- **Observability** — :class:`Tracer`, :class:`MetricsRegistry`, the
  run ledger and drift watchdog (:class:`RunLedger`,
  :func:`check_ledger`), and the :mod:`repro.obs` module itself for
  ``obs.enable()`` / ``obs.profile()``.
- **Errors** — the full exception hierarchy rooted at :class:`ReproError`.
"""

from __future__ import annotations

from . import obs
from .config import (
    CacheConfig,
    PipelineConfig,
    SystemConfig,
    get_config,
    haswell_e5_2650l_v3,
)
from .core import (
    Characterizer,
    SubsetResult,
    SubsetSelector,
    feature_matrix,
    feature_vector,
)
from .errors import (
    AnalysisError,
    ClusteringError,
    CollectionError,
    ConfigError,
    CounterError,
    CounterValidationError,
    ExperimentError,
    LintError,
    ReproError,
    SimulationError,
    UnknownBenchmarkError,
    WorkloadError,
)
from .obs import (
    CriticalPathReport,
    DriftDetector,
    DriftReport,
    DriftThresholds,
    MetricsRegistry,
    RunLedger,
    SpanProfiler,
    Tracer,
    UtilizationReport,
    check_ledger,
    chrome_trace,
    critical_path,
    export_chrome_trace,
    load_spans,
    utilization,
)
from .perf import CounterReport, PerfSession
from .phases import (
    PhaseDetector,
    PhasedTraceGenerator,
    PhasedWorkload,
    Schedule,
    estimate_from_simulation_points,
    make_phases,
)
from .runner import (
    PairFailure,
    ResultCache,
    RunManifest,
    SuiteRunner,
    SuiteRunResult,
)
from .uarch.core import SimulatedCore
from .workloads import (
    BenchmarkSuite,
    InputSize,
    MiniSuite,
    WorkloadProfile,
    cpu2006,
    cpu2017,
)
from .workloads.calibrate import solve_pipeline_params
from .workloads.generator import TraceGenerator
from .workloads.profile import (
    BranchBehavior,
    BranchMix,
    InstructionMix,
    MemoryBehavior,
)

__all__ = [
    # Suites and workloads
    "BenchmarkSuite",
    "BranchBehavior",
    "BranchMix",
    "InputSize",
    "InstructionMix",
    "MemoryBehavior",
    "MiniSuite",
    "WorkloadProfile",
    "cpu2006",
    "cpu2017",
    # Collection
    "CounterReport",
    "PairFailure",
    "PerfSession",
    "ResultCache",
    "RunManifest",
    "SuiteRunResult",
    "SuiteRunner",
    # Simulation
    "CacheConfig",
    "PipelineConfig",
    "SimulatedCore",
    "SystemConfig",
    "TraceGenerator",
    "get_config",
    "haswell_e5_2650l_v3",
    "solve_pipeline_params",
    # Analysis
    "Characterizer",
    "PhaseDetector",
    "PhasedTraceGenerator",
    "PhasedWorkload",
    "Schedule",
    "SubsetResult",
    "SubsetSelector",
    "estimate_from_simulation_points",
    "feature_matrix",
    "feature_vector",
    "make_phases",
    # Observability
    "CriticalPathReport",
    "DriftDetector",
    "DriftReport",
    "DriftThresholds",
    "MetricsRegistry",
    "RunLedger",
    "SpanProfiler",
    "Tracer",
    "UtilizationReport",
    "check_ledger",
    "chrome_trace",
    "critical_path",
    "export_chrome_trace",
    "load_spans",
    "obs",
    "utilization",
    # Errors
    "AnalysisError",
    "ClusteringError",
    "CollectionError",
    "ConfigError",
    "CounterError",
    "CounterValidationError",
    "ExperimentError",
    "LintError",
    "ReproError",
    "SimulationError",
    "UnknownBenchmarkError",
    "WorkloadError",
]
