"""Canonical content hashing shared by the cache, ledger, and linter.

This module is the layering-neutral home of the repository's one
content-hash definition: a SHA-256 over the canonical JSON encoding of
arbitrarily nested dataclasses, enums, containers, and scalars.  It was
extracted from :mod:`repro.runner.cache` (which re-exports it unchanged)
so that lower layers — :mod:`repro.obs` in particular — can hash material
without importing the runner, keeping the import graph acyclic and the
layer ordering enforceable by ``repro lint --project`` (rule LAY001).

It must stay dependency-free: importing anything above the error layer
from here would reintroduce exactly the cycle it exists to break.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json


def jsonable(obj):
    """Recursively convert dataclasses/enums/tuples to JSON-safe values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [jsonable(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): jsonable(value) for key, value in obj.items()}
    return obj


def content_hash(material) -> str:
    """SHA-256 over the canonical JSON encoding of ``material``."""
    payload = json.dumps(
        jsonable(material), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
